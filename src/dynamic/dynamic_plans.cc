#include "src/dynamic/dynamic_plans.h"

#include <algorithm>

namespace oodb {

namespace {

/// Types referenced anywhere in the query's bindings.
std::vector<TypeId> QueryTypes(const QueryContext& ctx) {
  std::vector<TypeId> out;
  for (int b = 0; b < ctx.bindings.size(); ++b) {
    TypeId t = ctx.bindings.def(b).type;
    if (std::find(out.begin(), out.end(), t) == out.end()) out.push_back(t);
  }
  return out;
}

}  // namespace

Result<DynamicPlan> DynamicPlan::Compile(const LogicalExpr& input,
                                         QueryContext* ctx, Catalog* catalog,
                                         OptimizerOptions opts) {
  if (ctx->catalog != catalog) {
    return Status::InvalidArgument("context/catalog mismatch");
  }
  DynamicPlan out;

  // Relevant indexes: those over collections of types the query binds.
  std::vector<TypeId> types = QueryTypes(*ctx);
  for (const IndexInfo& idx : catalog->indexes()) {
    if (std::find(types.begin(), types.end(), idx.collection.type) !=
        types.end()) {
      out.relevant_.push_back(idx.name);
    }
  }
  if (static_cast<int>(out.relevant_.size()) > kMaxRelevantIndexes) {
    return Status::OutOfRange("too many relevant indexes for dynamic plans");
  }

  // Remember current enablement to restore afterwards.
  std::vector<bool> saved;
  for (const std::string& name : out.relevant_) {
    OODB_ASSIGN_OR_RETURN(const IndexInfo* idx, catalog->FindIndex(name));
    saved.push_back(idx->enabled);
  }

  Status failure;
  int n = static_cast<int>(out.relevant_.size());
  for (int mask = 0; mask < (1 << n); ++mask) {
    for (int i = 0; i < n; ++i) {
      OODB_RETURN_IF_ERROR(
          catalog->SetIndexEnabled(out.relevant_[i], (mask >> i) & 1));
    }
    Optimizer optimizer(catalog, opts);
    Result<OptimizedQuery> planned = optimizer.Optimize(input, ctx);
    if (!planned.ok()) {
      failure = planned.status();
      break;
    }
    PlanVariant variant;
    for (int i = 0; i < n; ++i) {
      if ((mask >> i) & 1) variant.available.push_back(out.relevant_[i]);
    }
    variant.plan = planned->plan;
    variant.cost = planned->cost;
    out.variants_.push_back(std::move(variant));
  }

  for (int i = 0; i < n; ++i) {
    OODB_RETURN_IF_ERROR(catalog->SetIndexEnabled(out.relevant_[i], saved[i]));
  }
  if (!failure.ok()) return failure;
  return out;
}

Result<const PlanVariant*> DynamicPlan::Select(const Catalog& catalog) const {
  int mask = 0;
  for (size_t i = 0; i < relevant_.size(); ++i) {
    OODB_ASSIGN_OR_RETURN(const IndexInfo* idx,
                          catalog.FindIndex(relevant_[i]));
    if (idx->enabled) mask |= 1 << i;
  }
  if (mask >= static_cast<int>(variants_.size())) {
    return Status::Internal("no compiled variant for index configuration");
  }
  return &variants_[mask];
}

}  // namespace oodb
