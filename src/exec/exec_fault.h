// Deterministic exec-layer fault injection and the recovery knobs that
// tolerate it. The storage layer's FaultPolicy (storage/fault.h) fails
// charged page reads; this module extends the same seeded, replayable model
// one layer up, where parallelism lives: a worker pipeline can be made to
// *die* at a batch boundary (kWorkerFault), to *straggle* (a per-batch
// wall-clock sleep plus a simulated-clock charge on one worker), or to
// *stall* its exchange-queue pushes for a bounded number of batches. The
// injector is threaded through ExecEnv so every operator Next() is a
// potential fault site (Tick-level probabilistic kills) and every pipeline
// root batch is a deterministic one.
//
// Identity model: a fault site is (worker, attempt). `worker` is the
// Exchange partition index (0 for serial execution); `attempt` is the sum
// of the Session-level query attempt and the Exchange-level partition
// attempt, so a policy with fail_attempts = 1 produces a *transient* fault
// — attempt 0 dies, every re-execution of the same chunk succeeds — which
// is exactly the shape recovery and retry must win against. Per-worker
// counters and RNG streams make the fault sequence independent of thread
// interleaving: the same policy over the same per-worker access sequence
// fires identically on every run, at any DOP.
#ifndef OODB_EXEC_EXEC_FAULT_H_
#define OODB_EXEC_EXEC_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "src/common/mutex.h"
#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"

namespace oodb {

/// Exec-layer fault configuration; inert by default. Parsable from the
/// OODB_EXEC_FAULTS environment spec (see ParseExecFaultSpec).
struct ExecFaultPolicy {
  /// Seed for the per-worker probabilistic kill streams.
  uint64_t seed = 0;

  // --- worker failure (kWorkerFault) ---
  /// Worker index whose pipeline dies (-1 disables the deterministic kill;
  /// use fail_probability to arm every worker). Fires at the
  /// `fail_after_batches`-th batch boundary of each attempt of that
  /// worker's pipeline root, for every attempt below fail_attempts — so a
  /// transient policy kills attempt 0 and lets the retry run clean, while a
  /// permanent one kills every re-execution until recovery gives up.
  int fail_worker = -1;
  int64_t fail_after_batches = 1;
  /// Independent per-Tick (operator Next) kill probability in [0, 1), drawn
  /// from a per-worker RNG stream. 0 disables.
  double fail_probability = 0.0;
  /// Attempts [0, fail_attempts) are killed; later attempts of the same
  /// site run clean. 1 = transient (the recovery-must-win shape); a large
  /// value = permanent (the typed-terminal-Status shape).
  int fail_attempts = 1;

  // --- straggler (slow worker) ---
  /// Worker index that straggles, or -1 for none. Each batch boundary on
  /// that worker sleeps `slow_ms` of real time and charges `slow_sim_s`
  /// simulated seconds to the worker's private clock.
  int slow_worker = -1;
  double slow_ms = 0.0;
  double slow_sim_s = 0.0;
  /// Attempts [0, slow_attempts) straggle; later attempts run at speed (so
  /// a speculative re-dispatch observably beats the original).
  int slow_attempts = 1;

  // --- bounded queue stall ---
  /// The first `stall_pushes` exchange-queue pushes (across all workers)
  /// each sleep `stall_ms` of real time before entering the queue. Bounded
  /// by construction: a stall can slow a query, never hang it.
  int64_t stall_pushes = 0;
  double stall_ms = 0.0;

  bool enabled() const {
    return fail_worker >= 0 || fail_probability > 0.0 || slow_worker >= 0 ||
           stall_pushes > 0;
  }
};

/// Parses a "key=value,key=value" spec (the OODB_EXEC_FAULTS format) into a
/// policy. Keys: seed, fail_worker, fail_after_batches, fail_probability,
/// fail_attempts, slow_worker, slow_ms, slow_sim_s, slow_attempts,
/// stall_pushes, stall_ms. Unknown keys are rejected.
Result<ExecFaultPolicy> ParseExecFaultSpec(const std::string& spec);

/// Aggregated fault/recovery counters for one plan execution, owned by
/// ExecutePlan and updated by the Exchange recovery path at worker join.
/// Atomic because losing speculative attempts may still be running when the
/// consumer reads the totals.
struct ExecFaultStats {
  std::atomic<int64_t> partitions_retried{0};
  std::atomic<int64_t> partitions_speculated{0};
};

/// Recovery configuration for parallel execution (ExecOptions::recovery).
/// Off by default: Exchange then runs the streaming fast path, bit-identical
/// to the non-recoverable engine. On, Exchange switches to partition-atomic
/// delivery: each worker attempt stages its partition's batches locally and
/// publishes them only after the whole chunk succeeded, so a failed or
/// superseded attempt contributes nothing — re-execution is trivially
/// duplicate-free and exactly-once delivery is asserted per partition.
struct ExecRecoveryOptions {
  bool enabled = false;
  /// Attempts per partition (including the first) before the fault goes
  /// terminal. >= 1.
  int max_partition_attempts = 2;
  /// Straggler threshold as a fraction of the governor deadline: a
  /// partition not delivered within threshold * deadline_ms of its dispatch
  /// is speculatively re-dispatched (first result wins, loser suppressed).
  /// 0, or no governor deadline, disables speculation.
  double straggler_threshold = 0.0;
  /// Consumer poll interval while waiting on the queue (straggler checks
  /// and hang-bounding governor ticks happen at this cadence).
  double check_interval_ms = 10.0;
};

/// Per-execution injector. Thread-safe; all state is per-worker so the
/// fault sequence is interleaving-independent.
class ExecFaultInjector {
 public:
  explicit ExecFaultInjector(const ExecFaultPolicy& policy)
      : policy_(policy) {}

  /// What a fault site must do: fail (non-OK status), sleep real time
  /// (straggler/stall), and/or charge simulated seconds.
  struct Action {
    Status status;
    double sleep_ms = 0.0;
    double sim_delay_s = 0.0;
  };

  /// Batch boundary at a pipeline root (Exchange worker loop, or the
  /// executor's drain loop on Exchange-free plans). Deterministic fault
  /// kinds (fail_after_batches, straggler delay) fire here.
  Action OnBatchBoundary(int worker, int attempt);

  /// Operator-granularity checkpoint, called from ExecEnv::Tick at every
  /// Next() — the probabilistic kill site.
  Status OnTick(int worker, int attempt);

  /// Exchange-queue push boundary (bounded stall).
  Action OnPush(int worker, int attempt);

  /// Faults actually fired (not delays) — the observability counter.
  int64_t injected() const {
    return injected_.load(std::memory_order_relaxed);
  }

  const ExecFaultPolicy& policy() const { return policy_; }

 private:
  struct WorkerState {
    int64_t batches = 0;
    int64_t ticks = 0;
    Rng rng{0};
    bool rng_seeded = false;
  };

  /// State is keyed by the full fault-site identity (worker, attempt): each
  /// re-execution of a partition (or of the whole query) restarts its batch
  /// and tick counters, so deterministic faults fire at the same point of
  /// *every* attempt the policy arms — not just the first.
  WorkerState& StateLocked(int worker, int attempt) REQUIRES(mu_);
  void CountInjected();

  ExecFaultPolicy policy_;
  Mutex mu_{lock_rank::kExecFault};  ///< guards workers_ and pushes_
  std::map<std::pair<int, int>, WorkerState> workers_ GUARDED_BY(mu_);
  int64_t pushes_ GUARDED_BY(mu_) = 0;
  std::atomic<int64_t> injected_{0};
};

/// True for the exec-fault classes that re-execution can cure: the
/// partition's input is a read-only store, so a dead worker (kWorkerFault)
/// or a transient media error (kStorageFault) may succeed on retry.
/// Governor trips and cancellation are sticky/terminal by design.
inline bool IsRetryableExecFault(StatusCode code) {
  return code == StatusCode::kWorkerFault || code == StatusCode::kStorageFault;
}

}  // namespace oodb

#endif  // OODB_EXEC_EXEC_FAULT_H_
