#include "src/optimizer/plan_cache.h"

#include <algorithm>
#include <bit>

#include "src/common/metrics.h"

namespace oodb {

namespace {

/// Global (cross-cache) counters mirroring the per-cache atomics, so the
/// metrics snapshot sees aggregate cache behavior without enumerating
/// caches. Resolved once; registered counters are never deallocated.
struct CacheMetrics {
  Counter* hits;
  Counter* misses;
  Counter* evictions;
  Counter* invalidations;
  Counter* drift_evictions;

  static const CacheMetrics& Get() {
    static const CacheMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      CacheMetrics m;
      m.hits = r.counter("oodb_plan_cache_hits_total",
                         "Plan-cache lookups served a plan.");
      m.misses = r.counter("oodb_plan_cache_misses_total",
                           "Plan-cache lookups that fell through.");
      m.evictions = r.counter("oodb_plan_cache_evictions_total",
                              "Entries evicted by LRU capacity pressure.");
      m.invalidations =
          r.counter("oodb_plan_cache_invalidations_total",
                    "Entries dropped for stale catalog statistics.");
      m.drift_evictions =
          r.counter("oodb_plan_cache_drift_evictions_total",
                    "Entries evicted for observed execution drift.");
      return m;
    }();
    return m;
  }
};

/// Rewrites every scalar expression embedded in `node` through `subst`,
/// sharing untouched subtrees. Costs, cardinalities, and delivered
/// properties are kept from the cached plan: within one selectivity bucket
/// they are the approximation the cache trades for not searching.
PlanNodePtr RebindPlan(const PlanNodePtr& node,
                       const ExprSubstitution& subst) {
  std::vector<PlanNodePtr> children;
  children.reserve(node->children.size());
  bool changed = false;
  for (const PlanNodePtr& c : node->children) {
    PlanNodePtr r = RebindPlan(c, subst);
    changed |= (r != c);
    children.push_back(std::move(r));
  }
  ScalarExprPtr index_pred = SubstituteExpr(node->op.index_pred, subst);
  ScalarExprPtr pred = SubstituteExpr(node->op.pred, subst);
  std::vector<ScalarExprPtr> emit;
  emit.reserve(node->op.emit.size());
  bool emit_changed = false;
  for (const ScalarExprPtr& e : node->op.emit) {
    ScalarExprPtr s = SubstituteExpr(e, subst);
    emit_changed |= (s != e);
    emit.push_back(std::move(s));
  }
  if (!changed && index_pred == node->op.index_pred &&
      pred == node->op.pred && !emit_changed) {
    return node;
  }
  auto out = std::make_shared<PlanNode>(*node);
  out->children = std::move(children);
  out->op.index_pred = std::move(index_pred);
  out->op.pred = std::move(pred);
  out->op.emit = std::move(emit);
  return out;
}

}  // namespace

double CachedPlan::observed_drift() const {
  uint64_t bits = observed_drift_bits.load(std::memory_order_relaxed);
  return bits == 0 ? 1.0 : std::bit_cast<double>(bits);
}

void CachedPlan::UpdateObservedDrift(double drift) const {
  uint64_t bits = observed_drift_bits.load(std::memory_order_relaxed);
  // Keep the worst drift ever observed; racing executions both try, the
  // larger wins (drifts are >= 1.0, so positive-double bit patterns order
  // the same as the values and the CAS loop terminates).
  while (drift > (bits == 0 ? 1.0 : std::bit_cast<double>(bits))) {
    if (observed_drift_bits.compare_exchange_weak(
            bits, std::bit_cast<uint64_t>(drift),
            std::memory_order_relaxed)) {
      break;
    }
  }
}

PlanCache::PlanCache(size_t capacity)
    : capacity_(std::max<size_t>(1, capacity)),
      per_shard_(0),
      shards_(std::clamp<size_t>(capacity_, 1, 8)) {
  per_shard_ = (capacity_ + shards_.size() - 1) / shards_.size();
}

std::optional<OptimizedQuery> PlanCache::Lookup(
    const PlanCacheKey& key, uint64_t stats_version, const LogicalExpr& tree,
    const BindingTable& bindings, const std::vector<Value>& literals) {
  Shard& shard = ShardFor(key);
  std::shared_ptr<const CachedPlan> entry;
  bool stale = false;
  {
    ReaderMutexLock lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      CacheMetrics::Get().misses->Increment();
      return std::nullopt;
    }
    if (it->second->second->stats_version == stats_version) {
      entry = it->second->second;
    } else {
      stale = true;
    }
  }
  if (stale) {
    // Stale statistics: reclaim the slot under the exclusive lock (re-check
    // after the upgrade — a concurrent session may have replaced it); the
    // caller re-optimizes and re-inserts under the current version.
    WriterMutexLock lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end() &&
        it->second->second->stats_version != stats_version) {
      shard.lru.erase(it->second);
      shard.index.erase(it);
      invalidations_.fetch_add(1, std::memory_order_relaxed);
      CacheMetrics::Get().invalidations->Increment();
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    CacheMetrics::Get().misses->Increment();
    return std::nullopt;
  }
  // Refresh LRU recency on a sample of hits only: the splice needs the
  // exclusive lock, and paying it on every hit would serialize concurrent
  // sessions on the zipfian-hot entry.
  if ((shard.tick.fetch_add(1, std::memory_order_relaxed) & 15) == 0) {
    WriterMutexLock lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end() && it->second != shard.lru.begin()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    }
  }

  // Verify and rebind outside the lock; entries are immutable once stored.
  ExprSubstitution subst;
  if (!MatchParameterizedTrees(*entry->tree, entry->bindings, tree, bindings,
                               &subst)) {
    // Fingerprint collision (or a caller bug): never serve the plan.
    misses_.fetch_add(1, std::memory_order_relaxed);
    CacheMetrics::Get().misses->Increment();
    return std::nullopt;
  }
  OptimizedQuery out;
  out.plan = entry->literals == literals ? entry->plan
                                         : RebindPlan(entry->plan, subst);
  out.cost = entry->cost;
  out.stats = entry->stats;
  hits_.fetch_add(1, std::memory_order_relaxed);
  CacheMetrics::Get().hits->Increment();
  return out;
}

void PlanCache::Insert(const PlanCacheKey& key,
                       std::shared_ptr<const CachedPlan> entry) {
  Shard& shard = ShardFor(key);
  WriterMutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // A concurrent session optimized the same query; keep the newer result.
    it->second->second = std::move(entry);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, std::move(entry));
  shard.index.emplace(key, shard.lru.begin());
  while (shard.lru.size() > per_shard_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    CacheMetrics::Get().evictions->Increment();
  }
}

bool PlanCache::RecordDrift(const PlanCacheKey& key, double drift,
                            double evict_threshold) {
  Shard& shard = ShardFor(key);
  bool over = evict_threshold > 0.0 && drift > evict_threshold;
  {
    ReaderMutexLock lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return false;
    it->second->second->UpdateObservedDrift(drift);
  }
  if (!over) return false;
  WriterMutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return false;
  shard.lru.erase(it->second);
  shard.index.erase(it);
  drift_evictions_.fetch_add(1, std::memory_order_relaxed);
  CacheMetrics::Get().drift_evictions->Increment();
  return true;
}

double PlanCache::ObservedDrift(const PlanCacheKey& key) {
  Shard& shard = ShardFor(key);
  ReaderMutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return 1.0;
  return it->second->second->observed_drift();
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.invalidations = invalidations_.load(std::memory_order_relaxed);
  s.drift_evictions = drift_evictions_.load(std::memory_order_relaxed);
  for (const Shard& shard : shards_) {
    ReaderMutexLock lock(shard.mu);
    s.entries += static_cast<int64_t>(shard.lru.size());
  }
  return s;
}

void PlanCache::Clear() {
  for (Shard& shard : shards_) {
    WriterMutexLock lock(shard.mu);
    shard.lru.clear();
    shard.index.clear();
  }
}

}  // namespace oodb
