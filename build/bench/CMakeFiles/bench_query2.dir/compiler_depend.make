# Empty compiler generated dependencies file for bench_query2.
# This may be replaced when dependencies are built.
