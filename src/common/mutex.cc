#include "src/common/mutex.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace oodb {

std::string LockOrderViolation::ToString() const {
  return std::string("lock-rank violation: acquiring ") + acquired_name +
         " (rank " + std::to_string(acquired_order) + ") while holding " +
         held_name + " (rank " + std::to_string(held_order) + ")";
}

namespace {

void DefaultLockOrderHandler(const LockOrderViolation& v) {
  std::fprintf(stderr, "%s\n", v.ToString().c_str());
  std::abort();
}

std::atomic<LockOrderHandler> g_handler{&DefaultLockOrderHandler};

}  // namespace

LockOrderHandler SetLockOrderHandler(LockOrderHandler handler) {
  if (handler == nullptr) handler = &DefaultLockOrderHandler;
  LockOrderHandler prev = g_handler.exchange(handler);
  return prev == &DefaultLockOrderHandler ? nullptr : prev;
}

#if defined(OODB_LOCK_ORDER)

namespace lock_order {

namespace {

/// The per-thread held-lock stack. Trivially constructible AND trivially
/// destructible on purpose: ranked mutexes live in process-wide singletons
/// (WorkerPool, BatchPool, MetricsRegistry) whose destructors run during
/// static destruction — after the main thread's thread_local destructors.
/// A std::vector here would be freed by then, and the singleton teardown's
/// OnAcquire would corrupt the heap; a plain array has no destructor, so
/// post-teardown acquisitions stay well-defined. Depth 64 is far beyond the
/// engine's deepest real nesting (4); overflow degrades to not recording.
struct HeldStack {
  static constexpr int kCapacity = 64;
  LockRank entries[kCapacity];
  int size;
};
thread_local HeldStack g_held;

}  // namespace

void OnAcquire(const LockRank& rank) {
  HeldStack& held = g_held;
  // The inversion check is against the *highest* held rank: any held rank
  // >= the one being acquired breaks the strict total order, and the
  // highest is the tightest witness to name in the report. A total order
  // over acquisitions admits no cross-rank cycle, so catching every
  // inverted edge at acquire time is complete deadlock prevention — no
  // second thread has to race the reverse edge for the bug to be seen.
  const LockRank* worst = nullptr;
  for (int i = 0; i < held.size; ++i) {
    const LockRank& h = held.entries[i];
    if (h.order >= rank.order && (worst == nullptr || h.order > worst->order)) {
      worst = &h;
    }
  }
  if (worst != nullptr) {
    LockOrderViolation v;
    v.acquired_order = rank.order;
    v.acquired_name = rank.name;
    v.held_order = worst->order;
    v.held_name = worst->name;
    g_handler.load()(v);
  }
  if (held.size < HeldStack::kCapacity) held.entries[held.size++] = rank;
}

void OnRelease(const LockRank& rank) {
  HeldStack& held = g_held;
  // Locks are almost always released in LIFO order; scan from the back so
  // the common case is one comparison. (UniqueLock's out-of-order release
  // in hand-over-hand patterns would still be found.)
  for (int i = held.size; i > 0; --i) {
    LockRank& h = held.entries[i - 1];
    if (h.order == rank.order && h.name == rank.name) {
      for (int j = i - 1; j + 1 < held.size; ++j) {
        held.entries[j] = held.entries[j + 1];
      }
      --held.size;
      return;
    }
  }
}

}  // namespace lock_order

#endif  // OODB_LOCK_ORDER

}  // namespace oodb
