#include "src/cost/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/strings.h"

namespace oodb {

Cost Cost::Infinite() {
  return {std::numeric_limits<double>::infinity(),
          std::numeric_limits<double>::infinity()};
}

std::string Cost::ToString() const {
  return FormatDouble(total(), 3) + "s (io " + FormatDouble(io_s, 3) +
         "s, cpu " + FormatDouble(cpu_s, 3) + "s)";
}

double CostModel::PagesFor(const Catalog& catalog, TypeId type,
                           double card) const {
  int64_t obj = catalog.schema().type(type).object_size();
  // Whole objects per page (objects do not span pages), matching
  // Catalog::PagesFor.
  double per_page = std::max<int64_t>(1, opts_.page_size / std::max<int64_t>(1, obj));
  return std::ceil(card / per_page);
}

double CostModel::AssemblyDiscount(int window) const {
  if (window <= 1) return 1.0;
  // Interpolate from 1.0 toward the floor on a log scale; by window ~32 the
  // elevator pattern has realized nearly all of its seek savings.
  double floor = opts_.assembly_window_discount_floor;
  double t = std::min(1.0, std::log2(static_cast<double>(window)) / 5.0);
  return 1.0 - t * (1.0 - floor);
}

Cost CostModel::AssemblyIo(const Catalog& catalog, TypeId type, double n_refs,
                           int window) const {
  double faults = n_refs;
  if (std::optional<int64_t> population = catalog.TypeCardinality(type)) {
    if (opts_.yao_page_faults) {
      // Yao's formula (approximated): expected distinct pages touched by
      // n_refs uniform references into a `pages`-page extent — a refinement
      // of the paper's bound, enabled by clustering statistics.
      double pages = PagesFor(catalog, type, static_cast<double>(*population));
      double expected = pages * (1.0 - std::pow(1.0 - 1.0 / pages, n_refs));
      faults = std::min(faults, expected);
    } else {
      // With a known population (an extent exists) the optimizer "can place
      // an upper bound on the number of I/O operations needed" (paper §4):
      // at most one fault per distinct referenced object.
      faults = std::min(faults, static_cast<double>(*population));
    }
  }
  // The window discount models the elevator pattern over physical disk
  // locations; a window of 1 assembles one object at a time and "becomes
  // similar to the lookup component of an unclustered index scan".
  return RandomRead(faults * AssemblyDiscount(window));
}

Cost CostModel::HashJoinCpu(double build_tuples, double probe_tuples) const {
  return Cost::Cpu(build_tuples * opts_.cpu_hash_build_s +
                   probe_tuples * opts_.cpu_hash_probe_s);
}

Cost CostModel::HashJoinOverflowIo(double build_bytes,
                                   double probe_bytes) const {
  if (build_bytes <= opts_.memory_bytes) return {};
  double spill_fraction = 1.0 - opts_.memory_bytes / build_bytes;
  double spilled_pages =
      spill_fraction * (build_bytes + probe_bytes) / opts_.page_size;
  // Written once and re-read once, sequentially.
  return SeqRead(2.0 * spilled_pages);
}

}  // namespace oodb
