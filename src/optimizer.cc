#include "src/optimizer.h"

#include "src/physical/enforcers.h"
#include "src/physical/impl_rules.h"
#include "src/physical/parallel.h"
#include "src/rules/transformations.h"
#include "src/trace/opt_trace.h"
#include "src/verify/verify.h"

namespace oodb {

Result<OptimizedQuery> Optimizer::Optimize(const LogicalExpr& input,
                                           QueryContext* ctx,
                                           PhysProps required) const {
  if (ctx->catalog != catalog_) {
    return Status::InvalidArgument(
        "query context was built against a different catalog");
  }
  OODB_RETURN_IF_ERROR(ValidateLogicalTree(input, *ctx).status());

  CostModel cost_model(options_.cost);
  SearchEngine engine(ctx, &cost_model, &options_);
  for (auto& rule : MakeDefaultTransformations()) {
    engine.AddTransformation(std::move(rule));
  }
  for (auto& rule : MakeDefaultImplRules()) {
    engine.AddImplRule(std::move(rule));
  }
  for (auto& enf : MakeDefaultEnforcers()) {
    engine.AddEnforcer(std::move(enf));
  }

  OptimizedQuery out;
  OODB_ASSIGN_OR_RETURN(out.plan,
                        engine.Optimize(input, required, &out.stats));
  if (options_.max_dop > 1) {
    out.plan = PlantExchanges(out.plan, cost_model, options_.max_dop);
  }
  out.cost = out.plan->total_cost;
  if (options_.verify_plans) {
    // Soft-fail: a violation marks the result as suspect (Explain surfaces
    // it, the Session refuses to cache it) but the plan is still returned —
    // the verifier guards against optimizer bugs, and a diagnosable plan
    // beats an opaque error.
    VerifyReport memo_report = VerifyMemoReport(engine.memo());
    VerifyReport plan_report = VerifyPlanReport(*out.plan, *ctx);
    out.stats.verified = true;
    out.stats.verify_error = memo_report.ToString();
    if (!plan_report.ok()) {
      if (!out.stats.verify_error.empty()) out.stats.verify_error += "\n";
      out.stats.verify_error += plan_report.ToString();
    }
    if (options_.trace_sink != nullptr) {
      OptEvent ev;
      ev.kind = OptEventKind::kVerifyOutcome;
      ev.detail = out.stats.verify_error.empty() ? "ok"
                                                 : out.stats.verify_error;
      options_.trace_sink->Record(std::move(ev));
    }
  }
  return out;
}

}  // namespace oodb
