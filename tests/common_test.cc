#include <gtest/gtest.h>

#include "src/common/result.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/strings.h"

namespace oodb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::TypeError("x").code(), StatusCode::kTypeError);
  EXPECT_EQ(Status::PlanError("x").code(), StatusCode::kPlanError);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    OODB_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, AssignOrReturnExtractsValue) {
  auto produce = []() -> Result<int> { return 5; };
  auto consume = [&]() -> Result<int> {
    OODB_ASSIGN_OR_RETURN(int v, produce());
    return v + 1;
  };
  Result<int> r = consume();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 6);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto produce = []() -> Result<int> { return Status::OutOfRange("x"); };
  auto consume = [&]() -> Result<int> {
    OODB_ASSIGN_OR_RETURN(int v, produce());
    return v + 1;
  };
  EXPECT_EQ(consume().status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 9);
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringsTest, Split) {
  EXPECT_EQ(Split("a.b.c", '.'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", '.'), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a..b", '.'), (std::vector<std::string>{"a", "", "b"}));
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_FALSE(StartsWith("fo", "foo"));
}

TEST(StringsTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(120.0), "120");
  EXPECT_EQ(FormatDouble(0.08, 2), "0.08");
  EXPECT_EQ(FormatDouble(0.12345, 2), "0.12");
}

TEST(StringsTest, Repeat) {
  EXPECT_EQ(Repeat("ab", 3), "ababab");
  EXPECT_EQ(Repeat("x", 0), "");
  EXPECT_EQ(Repeat("x", -1), "");
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1), b(2);
  EXPECT_NE(a.Next(), b.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(3, 5);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 5);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

}  // namespace
}  // namespace oodb
