// Status: lightweight error type used throughout the library in place of
// exceptions (RocksDB/Arrow idiom). Fallible functions return Status or
// Result<T> (see result.h).
#ifndef OODB_COMMON_STATUS_H_
#define OODB_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace oodb {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kParseError,
  kTypeError,
  kPlanError,
  // Resource-governor and storage-fault categories (see common/governor.h):
  // queries bounded by a deadline/budget or cancelled cooperatively fail
  // with these instead of running to exhaustion; injected or real storage
  // faults surface as kStorageFault at the session boundary.
  kDeadlineExceeded,
  kBudgetExhausted,
  kCancelled,
  kStorageFault,
  // Exec-layer fault category (see exec/exec_fault.h): a parallel worker
  // died (or was made to die by the injector) mid-pipeline. Transient by
  // definition — the partition's input is a read-only store — so it is the
  // retryable class the Exchange recovery path and Session retry ladder
  // re-execute.
  kWorkerFault,
  // Adaptive re-optimization (see session.h AdaptiveOptions): a drift check
  // at a pipeline breaker observed actual cardinality off from the estimate
  // by more than the configured factor and aborted the unexecuted suffix.
  // Deliberately NOT in IsRetryableExecFault — re-running the same plan
  // would hit the same drift; the Session replan path catches this code,
  // re-enters the memo with measured cardinalities, and restarts.
  kPlanDrift,
};

/// Returns a human-readable name for a status code ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy when OK (no allocation).
/// [[nodiscard]]: silently dropping a Status hides failures (the bug class
/// behind unchecked AddToSet/BuildIndexes call sites).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status PlanError(std::string msg) {
    return Status(StatusCode::kPlanError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status BudgetExhausted(std::string msg) {
    return Status(StatusCode::kBudgetExhausted, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status StorageFault(std::string msg) {
    return Status(StatusCode::kStorageFault, std::move(msg));
  }
  static Status WorkerFault(std::string msg) {
    return Status(StatusCode::kWorkerFault, std::move(msg));
  }
  static Status PlanDrift(std::string msg) {
    return Status(StatusCode::kPlanDrift, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace oodb

/// Propagates a non-OK Status to the caller.
#define OODB_RETURN_IF_ERROR(expr)                  \
  do {                                              \
    ::oodb::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                      \
  } while (0)

#endif  // OODB_COMMON_STATUS_H_
