#include "src/storage/buffer_pool.h"

namespace oodb {

Status BufferPool::Access(PageId page) {
  if (faults_ != nullptr) OODB_RETURN_IF_ERROR(faults_->OnPageAccess(page));
  auto it = index_.find(page);
  if (it != index_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return Status::OK();
  }
  ++misses_;
  disk_->Read(page);
  lru_.push_front(page);
  index_[page] = lru_.begin();
  if (static_cast<int64_t>(lru_.size()) > capacity_) {
    index_.erase(lru_.back());
    lru_.pop_back();
  }
  return Status::OK();
}

void BufferPool::Reset() {
  lru_.clear();
  index_.clear();
  hits_ = misses_ = 0;
}

}  // namespace oodb
