#!/usr/bin/env python3
"""Bench regression gate: compare a fresh bench JSON (BENCH_exec.json or
BENCH_adaptive.json) to the committed baseline and fail on a >10%
regression at any point.

Usage: check_bench_regression.py BASELINE.json FRESH.json [--threshold 0.10]

The batch/dop grid, the selective (vectorized-vs-row) phase, the ordered
(sort / top-k) phase, and the adaptive (static-vs-adaptive stale-stats)
phase are checked point by point, keyed by their configuration. Grid and
selective points are wall-clock rows/sec (higher is better); ordered and
adaptive points are deterministic simulated seconds (lower is better), so
the threshold flips sign for them. A point present on only one
side fails loudly in either direction: silently dropping a measured
configuration is itself a regression, and a configuration the bench now
measures but the baseline doesn't is an unguarded point — the baseline must
be refreshed to cover it, or the gate would rubber-stamp it forever.
Improvements are reported but never fail the gate, so the committed
baseline only needs refreshing when the engine genuinely gets faster.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def keyed_points(doc):
    """(section, config-key) -> (value, unit, higher_is_better)."""
    points = {}
    for entry in doc.get("grid", []):
        points[("grid", f"batch={entry['batch']} dop={entry['dop']}")] = (
            entry["rows_per_sec"], "rows/sec", True
        )
    for entry in doc.get("selective", []):
        key = f"dop={entry['dop']} vectorize={entry['vectorize']}"
        points[("selective", key)] = (entry["rows_per_sec"], "rows/sec", True)
    for entry in doc.get("ordered", []):
        key = f"phase={entry['phase']} dop={entry['dop']}"
        points[("ordered", key)] = (entry["sim_s"], "sim sec", False)
    for entry in doc.get("adaptive", []):
        # Simulated seconds are deterministic, but the static arm's value
        # shifts whenever the cost model or the OO7 generator changes; the
        # point that must not regress is the adaptive arm (and the bench
        # itself hard-gates the 2x static/adaptive ratio).
        points[("adaptive", f"mode={entry['mode']}")] = (
            entry["sim_s"], "sim sec", False
        )
    return points


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="max tolerated fractional slowdown per point")
    args = parser.parse_args()

    base = keyed_points(load(args.baseline))
    fresh = keyed_points(load(args.fresh))

    failures = []
    for key, (base_rate, unit, higher_better) in sorted(base.items()):
        section, config = key
        label = f"{section} {config}"
        if key not in fresh:
            failures.append(f"{label}: present in baseline, missing from "
                            "fresh results")
            continue
        fresh_rate = fresh[key][0]
        if base_rate <= 0:
            continue
        change = (fresh_rate - base_rate) / base_rate
        regressed = change < -args.threshold if higher_better \
            else change > args.threshold
        status = "ok"
        if regressed:
            status = "REGRESSION"
            failures.append(f"{label}: {base_rate} -> {fresh_rate} {unit} "
                            f"({change:+.1%}, limit {args.threshold:.0%})")
        print(f"{label}: {base_rate} -> {fresh_rate} {unit} "
              f"({change:+.1%}) {status}")

    for key in sorted(set(fresh) - set(base)):
        section, config = key
        failures.append(f"{section} {config}: present in fresh results, "
                        "missing from baseline (refresh the baseline to "
                        "cover the new configuration)")

    if failures:
        print(f"\n{len(failures)} bench regression(s) vs {args.baseline}:",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nall {len(base)} points within -{args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
