#include "src/exec/operators.h"

#include <algorithm>
#include <deque>
#include <map>
#include <unordered_map>

namespace oodb {

namespace {

/// Shared state for all nodes of one executing plan.
struct ExecEnv {
  ObjectStore* store;
  QueryContext* ctx;
  QueryGovernor* governor = nullptr;

  SimClock& clock() { return store->clock(); }
  const CostModelOptions& timing() { return store->timing(); }
  int num_bindings() const { return ctx->bindings.size(); }

  /// Cooperative governor checkpoint, called at the top of every operator
  /// Next(). Free when ungoverned.
  Status Tick() {
    if (governor == nullptr) return Status::OK();
    return governor->CheckExec(store->disk().reads());
  }

  /// Charges one tuple buffered by a blocking operator (hash build, sort,
  /// nested-loops buffer, set ops) against the tracked-memory budget.
  Status ChargeBuffered() {
    if (governor == nullptr) return Status::OK();
    return governor->ChargeTrackedBytes(
        static_cast<int64_t>(num_bindings()) *
        static_cast<int64_t>(sizeof(Slot)));
  }
};

// ---------------------------------------------------------------------------
// File Scan
// ---------------------------------------------------------------------------
class FileScanExec : public ExecNode {
 public:
  FileScanExec(ExecEnv env, const PhysicalOp& op) : env_(env), op_(op) {}

  Status Open() override {
    OODB_ASSIGN_OR_RETURN(members_, env_.store->CollectionMembers(op_.coll));
    pos_ = 0;
    return Status::OK();
  }

  Result<bool> Next(Tuple* out) override {
    OODB_RETURN_IF_ERROR(env_.Tick());
    if (pos_ >= members_->size()) return false;
    Oid oid = (*members_)[pos_++];
    OODB_ASSIGN_OR_RETURN(const ObjectData* obj, env_.store->Read(oid));
    env_.clock().cpu_s += env_.timing().cpu_scan_tuple_s;
    *out = Tuple(env_.num_bindings());
    out->slot(op_.binding) = {oid, obj};
    return true;
  }

  void Close() override {}

 private:
  ExecEnv env_;
  PhysicalOp op_;
  const std::vector<Oid>* members_ = nullptr;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Index Scan
// ---------------------------------------------------------------------------
class IndexScanExec : public ExecNode {
 public:
  IndexScanExec(ExecEnv env, const PhysicalOp& op) : env_(env), op_(op) {}

  Status Open() override {
    OODB_ASSIGN_OR_RETURN(const StoredIndex* idx,
                          env_.store->FindIndex(op_.index_name));
    // Extract the comparison and key constant from the key conjunct,
    // normalizing to attr-op-constant orientation.
    const ScalarExpr& key = *op_.index_pred;
    const ScalarExprPtr& l = key.children()[0];
    const ScalarExprPtr& r = key.children()[1];
    bool const_on_left = l->kind() == ScalarExpr::Kind::kConst;
    const Value& v = const_on_left ? l->value() : r->value();
    CmpOp cmp = const_on_left ? ReverseCmp(key.cmp_op()) : key.cmp_op();
    matches_ = idx->Scan(cmp, v);
    pos_ = 0;
    env_.clock().cpu_s += env_.timing().index_probe_s +
                          static_cast<double>(matches_.size()) *
                              env_.timing().index_leaf_s;
    return Status::OK();
  }

  Result<bool> Next(Tuple* out) override {
    OODB_RETURN_IF_ERROR(env_.Tick());
    while (pos_ < matches_.size()) {
      Oid oid = matches_[pos_++];
      OODB_ASSIGN_OR_RETURN(const ObjectData* obj, env_.store->Read(oid));
      *out = Tuple(env_.num_bindings());
      out->slot(op_.binding) = {oid, obj};
      if (op_.pred) {
        env_.clock().cpu_s += env_.timing().cpu_pred_s;
        OODB_ASSIGN_OR_RETURN(bool pass, EvalPredicate(op_.pred, *out, *env_.ctx));
        if (!pass) continue;
      }
      return true;
    }
    return false;
  }

  void Close() override {}

 private:
  ExecEnv env_;
  PhysicalOp op_;
  std::vector<Oid> matches_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Filter
// ---------------------------------------------------------------------------
class FilterExec : public ExecNode {
 public:
  FilterExec(ExecEnv env, const PhysicalOp& op, std::unique_ptr<ExecNode> child)
      : env_(env), op_(op), child_(std::move(child)),
        conjuncts_(static_cast<double>(
            ScalarExpr::SplitConjuncts(op_.pred).size())) {}

  Status Open() override { return child_->Open(); }

  Result<bool> Next(Tuple* out) override {
    OODB_RETURN_IF_ERROR(env_.Tick());
    while (true) {
      OODB_ASSIGN_OR_RETURN(bool more, child_->Next(out));
      if (!more) return false;
      env_.clock().cpu_s += conjuncts_ * env_.timing().cpu_pred_s;
      OODB_ASSIGN_OR_RETURN(bool pass, EvalPredicate(op_.pred, *out, *env_.ctx));
      if (pass) return true;
    }
  }

  void Close() override { child_->Close(); }

 private:
  ExecEnv env_;
  PhysicalOp op_;
  std::unique_ptr<ExecNode> child_;
  double conjuncts_;
};

// ---------------------------------------------------------------------------
// Hybrid Hash Join (build on the left input)
// ---------------------------------------------------------------------------
class HashJoinExec : public ExecNode {
 public:
  HashJoinExec(ExecEnv env, const PhysicalOp& op, BindingSet left_scope,
               std::unique_ptr<ExecNode> left, std::unique_ptr<ExecNode> right)
      : env_(env), op_(op), left_scope_(left_scope), left_(std::move(left)),
        right_(std::move(right)) {
    // Split each equality conjunct into (build-side expr, probe-side expr).
    for (const ScalarExprPtr& c : ScalarExpr::SplitConjuncts(op_.pred)) {
      const ScalarExprPtr& l = c->children()[0];
      const ScalarExprPtr& r = c->children()[1];
      if (left_scope_.ContainsAll(l->ReferencedBindings())) {
        build_keys_.push_back(l);
        probe_keys_.push_back(r);
      } else {
        build_keys_.push_back(r);
        probe_keys_.push_back(l);
      }
    }
  }

  Status Open() override {
    OODB_RETURN_IF_ERROR(left_->Open());
    Tuple t;
    while (true) {
      OODB_ASSIGN_OR_RETURN(bool more, left_->Next(&t));
      if (!more) break;
      OODB_ASSIGN_OR_RETURN(std::string key, KeyOf(build_keys_, t));
      env_.clock().cpu_s += env_.timing().cpu_hash_build_s;
      OODB_RETURN_IF_ERROR(env_.ChargeBuffered());
      table_[key].push_back(t);
    }
    left_->Close();
    return right_->Open();
  }

  Result<bool> Next(Tuple* out) override {
    OODB_RETURN_IF_ERROR(env_.Tick());
    while (true) {
      if (bucket_ != nullptr && bucket_pos_ < bucket_->size()) {
        *out = (*bucket_)[bucket_pos_++];
        out->MergeFrom(probe_tuple_);
        return true;
      }
      OODB_ASSIGN_OR_RETURN(bool more, right_->Next(&probe_tuple_));
      if (!more) return false;
      env_.clock().cpu_s += env_.timing().cpu_hash_probe_s;
      OODB_ASSIGN_OR_RETURN(std::string key, KeyOf(probe_keys_, probe_tuple_));
      auto it = table_.find(key);
      bucket_ = it == table_.end() ? nullptr : &it->second;
      bucket_pos_ = 0;
    }
  }

  void Close() override { right_->Close(); }

 private:
  Result<std::string> KeyOf(const std::vector<ScalarExprPtr>& exprs,
                            const Tuple& t) {
    std::string key;
    for (const ScalarExprPtr& e : exprs) {
      OODB_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, t, *env_.ctx));
      key += v.KeyString();
      key += '|';
    }
    return key;
  }

  ExecEnv env_;
  PhysicalOp op_;
  BindingSet left_scope_;
  std::unique_ptr<ExecNode> left_, right_;
  std::vector<ScalarExprPtr> build_keys_, probe_keys_;
  std::unordered_map<std::string, std::vector<Tuple>> table_;
  Tuple probe_tuple_;
  const std::vector<Tuple>* bucket_ = nullptr;
  size_t bucket_pos_ = 0;
};

// ---------------------------------------------------------------------------
// Assembly: windowed complex-object assembly. Pulls up to `window` input
// tuples, gathers their unresolved references, sorts them by physical page
// (the elevator pattern), fetches, and emits — step by step for
// multi-component assemblies.
// ---------------------------------------------------------------------------
class AssemblyExec : public ExecNode {
 public:
  AssemblyExec(ExecEnv env, const PhysicalOp& op,
               std::unique_ptr<ExecNode> child)
      : env_(env), op_(op), child_(std::move(child)) {
    window_ = op_.window > 0 ? op_.window : env_.timing().assembly_window;
  }

  Status Open() override {
    OODB_RETURN_IF_ERROR(child_->Open());
    if (op_.warm_start) OODB_RETURN_IF_ERROR(WarmStart());
    return Status::OK();
  }

  Result<bool> Next(Tuple* out) override {
    OODB_RETURN_IF_ERROR(env_.Tick());
    while (true) {
      if (pos_ >= batch_.size()) {
        OODB_RETURN_IF_ERROR(FillBatch());
        if (batch_.empty()) return false;
      }
      size_t i = pos_++;
      if (dropped_[i]) continue;  // dangling reference: no match
      *out = std::move(batch_[i]);
      return true;
    }
  }

  void Close() override { child_->Close(); }

 private:
  Status WarmStart() {
    for (const MatStep& step : op_.mats) {
      TypeId t = env_.ctx->bindings.def(step.target).type;
      if (!env_.store->catalog().HasExtent(t)) continue;
      OODB_ASSIGN_OR_RETURN(
          const std::vector<Oid>* members,
          env_.store->CollectionMembers(CollectionId::Extent(t)));
      for (Oid oid : *members) {
        OODB_ASSIGN_OR_RETURN(const ObjectData* obj,
                              env_.store->Read(oid));  // sequential scan
        pinned_[oid] = obj;
        env_.clock().cpu_s += env_.timing().cpu_hash_build_s;
      }
    }
    return Status::OK();
  }

  Status FillBatch() {
    batch_.clear();
    pos_ = 0;
    Tuple t;
    while (static_cast<int>(batch_.size()) < window_) {
      OODB_ASSIGN_OR_RETURN(bool more, child_->Next(&t));
      if (!more) break;
      batch_.push_back(std::move(t));
    }
    dropped_.assign(batch_.size(), false);
    if (batch_.empty()) return Status::OK();

    for (const MatStep& step : op_.mats) {
      // Gather the references of this step across the batch.
      std::vector<std::pair<PageId, std::pair<size_t, Oid>>> pending;
      for (size_t i = 0; i < batch_.size(); ++i) {
        if (dropped_[i]) continue;
        Oid target;
        if (step.field == kInvalidField) {
          target = batch_[i].slot(step.source).ref;
        } else {
          const Slot& src = batch_[i].slot(step.source);
          if (!src.loaded()) {
            return Status::Internal(
                "assembly source not present in memory: " +
                env_.ctx->bindings.def(step.source).name);
          }
          target = src.obj->ref(step.field);
        }
        env_.clock().cpu_s += env_.timing().cpu_deref_s;
        if (target == kInvalidOid || !env_.store->Exists(target)) {
          dropped_[i] = true;  // dangling reference: no match
          continue;
        }
        pending.push_back({env_.store->PageOf(target), {i, target}});
      }
      // Elevator: resolve in page order.
      std::sort(pending.begin(), pending.end());
      for (const auto& [page, work] : pending) {
        (void)page;
        auto [i, target] = work;
        auto pin = pinned_.find(target);
        const ObjectData* obj;
        if (pin != pinned_.end()) {
          obj = pin->second;
        } else {
          OODB_ASSIGN_OR_RETURN(obj, env_.store->Read(target));
        }
        batch_[i].slot(step.target) = {target, obj};
      }
    }
    return Status::OK();
  }

  ExecEnv env_;
  PhysicalOp op_;
  std::unique_ptr<ExecNode> child_;
  int window_;
  std::vector<Tuple> batch_;
  std::vector<bool> dropped_;
  size_t pos_ = 0;
  std::unordered_map<Oid, const ObjectData*> pinned_;
};

// ---------------------------------------------------------------------------
// Pointer Join: per-tuple dereference, no batching.
// ---------------------------------------------------------------------------
class PointerJoinExec : public ExecNode {
 public:
  PointerJoinExec(ExecEnv env, const PhysicalOp& op,
                  std::unique_ptr<ExecNode> child)
      : env_(env), op_(op), child_(std::move(child)) {}

  Status Open() override { return child_->Open(); }

  Result<bool> Next(Tuple* out) override {
    OODB_RETURN_IF_ERROR(env_.Tick());
    while (true) {
      OODB_ASSIGN_OR_RETURN(bool more, child_->Next(out));
      if (!more) return false;
      const MatStep& step = op_.mats[0];
      Oid target;
      if (step.field == kInvalidField) {
        target = out->slot(step.source).ref;
      } else {
        const Slot& src = out->slot(step.source);
        if (!src.loaded()) {
          return Status::Internal("pointer join source not in memory");
        }
        target = src.obj->ref(step.field);
      }
      env_.clock().cpu_s += env_.timing().cpu_deref_s;
      // Dangling references (invalid OID or not in the store) are no-match,
      // matching Mat == Join semantics and the reference evaluator.
      if (target == kInvalidOid || !env_.store->Exists(target)) continue;
      OODB_ASSIGN_OR_RETURN(const ObjectData* obj, env_.store->Read(target));
      out->slot(step.target) = {target, obj};
      return true;
    }
  }

  void Close() override { child_->Close(); }

 private:
  ExecEnv env_;
  PhysicalOp op_;
  std::unique_ptr<ExecNode> child_;
};

// ---------------------------------------------------------------------------
// Nested Loops: buffers the left input, loops it per right tuple.
// ---------------------------------------------------------------------------
class NestedLoopsExec : public ExecNode {
 public:
  NestedLoopsExec(ExecEnv env, const PhysicalOp& op,
                  std::unique_ptr<ExecNode> left,
                  std::unique_ptr<ExecNode> right)
      : env_(env), op_(op), left_(std::move(left)), right_(std::move(right)) {}

  Status Open() override {
    OODB_RETURN_IF_ERROR(left_->Open());
    Tuple t;
    while (true) {
      OODB_ASSIGN_OR_RETURN(bool more, left_->Next(&t));
      if (!more) break;
      env_.clock().cpu_s += env_.timing().cpu_scan_tuple_s;
      OODB_RETURN_IF_ERROR(env_.ChargeBuffered());
      buffered_.push_back(std::move(t));
    }
    left_->Close();
    pos_ = buffered_.size();  // no right tuple yet
    return right_->Open();
  }

  Result<bool> Next(Tuple* out) override {
    OODB_RETURN_IF_ERROR(env_.Tick());
    while (true) {
      while (pos_ < buffered_.size()) {
        *out = buffered_[pos_++];
        out->MergeFrom(right_tuple_);
        env_.clock().cpu_s += env_.timing().cpu_pred_s;
        OODB_ASSIGN_OR_RETURN(bool pass,
                              EvalPredicate(op_.pred, *out, *env_.ctx));
        if (pass) return true;
      }
      OODB_ASSIGN_OR_RETURN(bool more, right_->Next(&right_tuple_));
      if (!more) return false;
      pos_ = 0;
    }
  }

  void Close() override { right_->Close(); }

 private:
  ExecEnv env_;
  PhysicalOp op_;
  std::unique_ptr<ExecNode> left_, right_;
  std::vector<Tuple> buffered_;
  size_t pos_ = 0;
  Tuple right_tuple_;
};

// ---------------------------------------------------------------------------
// Alg-Unnest
// ---------------------------------------------------------------------------
class UnnestExec : public ExecNode {
 public:
  UnnestExec(ExecEnv env, const PhysicalOp& op, std::unique_ptr<ExecNode> child)
      : env_(env), op_(op), child_(std::move(child)) {}

  Status Open() override { return child_->Open(); }

  Result<bool> Next(Tuple* out) override {
    OODB_RETURN_IF_ERROR(env_.Tick());
    while (true) {
      if (members_ != nullptr && member_pos_ < members_->size()) {
        *out = current_;
        out->slot(op_.target) = {(*members_)[member_pos_++], nullptr};
        env_.clock().cpu_s += env_.timing().cpu_unnest_s;
        return true;
      }
      OODB_ASSIGN_OR_RETURN(bool more, child_->Next(&current_));
      if (!more) return false;
      const Slot& src = current_.slot(op_.source);
      if (!src.loaded()) {
        return Status::Internal("unnest source not present in memory");
      }
      const TypeDef& td = env_.ctx->schema().type(src.obj->type);
      int slot = 0;
      for (FieldId f = 0; f < op_.field; ++f) {
        if (td.field(f).kind == FieldKind::kRefSet) ++slot;
      }
      members_ = &src.obj->ref_sets[slot];
      member_pos_ = 0;
    }
  }

  void Close() override { child_->Close(); }

 private:
  ExecEnv env_;
  PhysicalOp op_;
  std::unique_ptr<ExecNode> child_;
  Tuple current_;
  const std::vector<Oid>* members_ = nullptr;
  size_t member_pos_ = 0;
};

// ---------------------------------------------------------------------------
// Alg-Project
// ---------------------------------------------------------------------------
class ProjectExec : public ExecNode {
 public:
  ProjectExec(ExecEnv env, const PhysicalOp& op,
              std::unique_ptr<ExecNode> child)
      : env_(env), op_(op), child_(std::move(child)) {}

  Status Open() override { return child_->Open(); }

  Result<bool> Next(Tuple* out) override {
    OODB_RETURN_IF_ERROR(env_.Tick());
    OODB_ASSIGN_OR_RETURN(bool more, child_->Next(out));
    if (!more) return false;
    env_.clock().cpu_s += env_.timing().cpu_scan_tuple_s;
    // Validate that every emitted attribute's component is loaded — the
    // executor evaluates the emit list from the final tuples (a Sort
    // enforcer may sit above), but the property violation should surface
    // here, at the operator that required the loads.
    for (const ScalarExprPtr& e : op_.emit) {
      OODB_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, *out, *env_.ctx));
      (void)v;
    }
    return true;
  }

  void Close() override { child_->Close(); }

 private:
  ExecEnv env_;
  PhysicalOp op_;
  std::unique_ptr<ExecNode> child_;
};

// ---------------------------------------------------------------------------
// Hash-based set operations over whole-tuple identity (the slot refs).
// ---------------------------------------------------------------------------
class HashSetOpExec : public ExecNode {
 public:
  HashSetOpExec(ExecEnv env, const PhysicalOp& op, BindingSet scope,
                std::unique_ptr<ExecNode> left, std::unique_ptr<ExecNode> right)
      : env_(env), op_(op), scope_(scope), left_(std::move(left)),
        right_(std::move(right)) {}

  Status Open() override {
    OODB_RETURN_IF_ERROR(left_->Open());
    OODB_RETURN_IF_ERROR(right_->Open());
    Tuple t;
    // Materialize the left side keyed by identity.
    while (true) {
      OODB_ASSIGN_OR_RETURN(bool more, left_->Next(&t));
      if (!more) break;
      env_.clock().cpu_s += env_.timing().cpu_hash_build_s;
      OODB_RETURN_IF_ERROR(env_.ChargeBuffered());
      left_table_.emplace(KeyOf(t), t);
    }
    left_->Close();

    switch (op_.kind) {
      case PhysOpKind::kHashUnion: {
        for (auto& [key, tuple] : left_table_) {
          (void)key;
          out_.push_back(tuple);
        }
        std::map<std::string, Tuple> seen;
        while (true) {
          OODB_ASSIGN_OR_RETURN(bool more, right_->Next(&t));
          if (!more) break;
          env_.clock().cpu_s += env_.timing().cpu_hash_probe_s;
          std::string k = KeyOf(t);
          if (left_table_.count(k) == 0 && seen.count(k) == 0) {
            seen.emplace(k, t);
            out_.push_back(t);
          }
        }
        break;
      }
      case PhysOpKind::kHashIntersect: {
        std::map<std::string, Tuple> seen;
        while (true) {
          OODB_ASSIGN_OR_RETURN(bool more, right_->Next(&t));
          if (!more) break;
          env_.clock().cpu_s += env_.timing().cpu_hash_probe_s;
          std::string k = KeyOf(t);
          if (left_table_.count(k) != 0 && seen.count(k) == 0) {
            seen.emplace(k, t);
            out_.push_back(t);
          }
        }
        break;
      }
      default: {  // difference
        while (true) {
          OODB_ASSIGN_OR_RETURN(bool more, right_->Next(&t));
          if (!more) break;
          env_.clock().cpu_s += env_.timing().cpu_hash_probe_s;
          left_table_.erase(KeyOf(t));
        }
        for (auto& [key, tuple] : left_table_) {
          (void)key;
          out_.push_back(tuple);
        }
        break;
      }
    }
    right_->Close();
    return Status::OK();
  }

  Result<bool> Next(Tuple* out) override {
    OODB_RETURN_IF_ERROR(env_.Tick());
    if (pos_ >= out_.size()) return false;
    *out = out_[pos_++];
    return true;
  }

  void Close() override {}

 private:
  std::string KeyOf(const Tuple& t) {
    std::string key;
    for (BindingId b : scope_.ToVector()) {
      key += std::to_string(t.slot(b).ref);
      key += '|';
    }
    return key;
  }

  ExecEnv env_;
  PhysicalOp op_;
  BindingSet scope_;
  std::unique_ptr<ExecNode> left_, right_;
  std::map<std::string, Tuple> left_table_;
  std::vector<Tuple> out_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Sort (enforcer, extension)
// ---------------------------------------------------------------------------
class SortExec : public ExecNode {
 public:
  SortExec(ExecEnv env, const PhysicalOp& op, std::unique_ptr<ExecNode> child)
      : env_(env), op_(op), child_(std::move(child)) {}

  Status Open() override {
    OODB_RETURN_IF_ERROR(child_->Open());
    Tuple t;
    std::vector<std::pair<Value, Tuple>> keyed;
    while (true) {
      OODB_ASSIGN_OR_RETURN(bool more, child_->Next(&t));
      if (!more) break;
      OODB_ASSIGN_OR_RETURN(
          Value v, EvalExpr(*ScalarExpr::Attr(op_.sort.binding, op_.sort.field),
                            t, *env_.ctx));
      env_.clock().cpu_s += env_.timing().cpu_hash_probe_s;
      OODB_RETURN_IF_ERROR(env_.ChargeBuffered());
      keyed.emplace_back(std::move(v), std::move(t));
    }
    child_->Close();
    std::stable_sort(keyed.begin(), keyed.end(),
                     [](const auto& a, const auto& b) {
                       return a.first.Compare(b.first) < 0;
                     });
    env_.clock().cpu_s += static_cast<double>(keyed.size()) *
                          env_.timing().cpu_hash_probe_s;
    out_.reserve(keyed.size());
    for (auto& [v, tuple] : keyed) {
      (void)v;
      out_.push_back(std::move(tuple));
    }
    return Status::OK();
  }

  Result<bool> Next(Tuple* out) override {
    OODB_RETURN_IF_ERROR(env_.Tick());
    if (pos_ >= out_.size()) return false;
    *out = std::move(out_[pos_++]);
    return true;
  }

  void Close() override {}

 private:
  ExecEnv env_;
  PhysicalOp op_;
  std::unique_ptr<ExecNode> child_;
  std::vector<Tuple> out_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Merge Join (extension): inputs sorted on the join attributes.
// ---------------------------------------------------------------------------
class MergeJoinExec : public ExecNode {
 public:
  MergeJoinExec(ExecEnv env, const PhysicalOp& op, BindingSet left_scope,
                std::unique_ptr<ExecNode> left, std::unique_ptr<ExecNode> right)
      : env_(env), op_(op), left_(std::move(left)), right_(std::move(right)) {
    ScalarExprPtr c = ScalarExpr::SplitConjuncts(op_.pred)[0];
    ScalarExprPtr l = c->children()[0];
    ScalarExprPtr r = c->children()[1];
    if (left_scope.ContainsAll(l->ReferencedBindings())) {
      left_key_ = l;
      right_key_ = r;
    } else {
      left_key_ = r;
      right_key_ = l;
    }
  }

  Status Open() override {
    OODB_RETURN_IF_ERROR(left_->Open());
    OODB_RETURN_IF_ERROR(right_->Open());
    OODB_ASSIGN_OR_RETURN(left_valid_, left_->Next(&left_tuple_));
    OODB_ASSIGN_OR_RETURN(right_valid_, right_->Next(&right_tuple_));
    return Status::OK();
  }

  Result<bool> Next(Tuple* out) override {
    OODB_RETURN_IF_ERROR(env_.Tick());
    while (true) {
      if (run_pos_ < run_.size()) {
        *out = run_[run_pos_++];
        out->MergeFrom(left_tuple_for_run_);
        if (run_pos_ >= run_.size()) {
          // Advance left; if its key equals the run key, replay the run.
          OODB_ASSIGN_OR_RETURN(left_valid_, left_->Next(&left_tuple_));
          if (left_valid_) {
            OODB_ASSIGN_OR_RETURN(Value lk,
                                  EvalExpr(*left_key_, left_tuple_, *env_.ctx));
            if (lk == run_key_) {
              left_tuple_for_run_ = left_tuple_;
              run_pos_ = 0;
            }
          }
        }
        return true;
      }
      if (!left_valid_ || !right_valid_) return false;
      OODB_ASSIGN_OR_RETURN(Value lk, EvalExpr(*left_key_, left_tuple_, *env_.ctx));
      OODB_ASSIGN_OR_RETURN(Value rk, EvalExpr(*right_key_, right_tuple_, *env_.ctx));
      env_.clock().cpu_s += env_.timing().cpu_hash_probe_s;
      int cmp = lk.Compare(rk);
      if (cmp < 0) {
        OODB_ASSIGN_OR_RETURN(left_valid_, left_->Next(&left_tuple_));
      } else if (cmp > 0) {
        OODB_ASSIGN_OR_RETURN(right_valid_, right_->Next(&right_tuple_));
      } else {
        // Collect the right-side run with this key.
        run_.clear();
        run_pos_ = 0;
        run_key_ = rk;
        left_tuple_for_run_ = left_tuple_;
        while (right_valid_) {
          OODB_ASSIGN_OR_RETURN(Value k,
                                EvalExpr(*right_key_, right_tuple_, *env_.ctx));
          if (!(k == run_key_)) break;
          run_.push_back(right_tuple_);
          OODB_ASSIGN_OR_RETURN(right_valid_, right_->Next(&right_tuple_));
        }
      }
    }
  }

  void Close() override {
    left_->Close();
    right_->Close();
  }

 private:
  ExecEnv env_;
  PhysicalOp op_;
  std::unique_ptr<ExecNode> left_, right_;
  ScalarExprPtr left_key_, right_key_;
  Tuple left_tuple_, right_tuple_, left_tuple_for_run_;
  bool left_valid_ = false, right_valid_ = false;
  std::vector<Tuple> run_;
  size_t run_pos_ = 0;
  Value run_key_;
};

}  // namespace

Result<std::unique_ptr<ExecNode>> BuildExecTree(const PlanNode& plan,
                                                ObjectStore* store,
                                                QueryContext* ctx,
                                                QueryGovernor* governor) {
  ExecEnv env{store, ctx, governor};
  std::vector<std::unique_ptr<ExecNode>> children;
  for (const PlanNodePtr& c : plan.children) {
    OODB_ASSIGN_OR_RETURN(std::unique_ptr<ExecNode> node,
                          BuildExecTree(*c, store, ctx, governor));
    children.push_back(std::move(node));
  }
  switch (plan.op.kind) {
    case PhysOpKind::kFileScan:
      return std::unique_ptr<ExecNode>(new FileScanExec(env, plan.op));
    case PhysOpKind::kIndexScan:
      return std::unique_ptr<ExecNode>(new IndexScanExec(env, plan.op));
    case PhysOpKind::kFilter:
      return std::unique_ptr<ExecNode>(
          new FilterExec(env, plan.op, std::move(children[0])));
    case PhysOpKind::kHybridHashJoin:
      return std::unique_ptr<ExecNode>(new HashJoinExec(
          env, plan.op, plan.children[0]->logical.scope, std::move(children[0]),
          std::move(children[1])));
    case PhysOpKind::kPointerJoin:
      return std::unique_ptr<ExecNode>(
          new PointerJoinExec(env, plan.op, std::move(children[0])));
    case PhysOpKind::kAssembly:
      return std::unique_ptr<ExecNode>(
          new AssemblyExec(env, plan.op, std::move(children[0])));
    case PhysOpKind::kAlgProject:
      return std::unique_ptr<ExecNode>(
          new ProjectExec(env, plan.op, std::move(children[0])));
    case PhysOpKind::kAlgUnnest:
      return std::unique_ptr<ExecNode>(
          new UnnestExec(env, plan.op, std::move(children[0])));
    case PhysOpKind::kHashUnion:
    case PhysOpKind::kHashIntersect:
    case PhysOpKind::kHashDifference:
      return std::unique_ptr<ExecNode>(new HashSetOpExec(
          env, plan.op, plan.logical.scope, std::move(children[0]),
          std::move(children[1])));
    case PhysOpKind::kSort:
      return std::unique_ptr<ExecNode>(
          new SortExec(env, plan.op, std::move(children[0])));
    case PhysOpKind::kMergeJoin:
      return std::unique_ptr<ExecNode>(new MergeJoinExec(
          env, plan.op, plan.children[0]->logical.scope, std::move(children[0]),
          std::move(children[1])));
    case PhysOpKind::kNestedLoops:
      return std::unique_ptr<ExecNode>(new NestedLoopsExec(
          env, plan.op, std::move(children[0]), std::move(children[1])));
  }
  return Status::Unimplemented("no executor for operator");
}

}  // namespace oodb
