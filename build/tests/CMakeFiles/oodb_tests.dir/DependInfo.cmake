
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/binding_test.cc" "tests/CMakeFiles/oodb_tests.dir/binding_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/binding_test.cc.o.d"
  "/root/repo/tests/catalog_test.cc" "tests/CMakeFiles/oodb_tests.dir/catalog_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/catalog_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/oodb_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/cost_model_test.cc" "tests/CMakeFiles/oodb_tests.dir/cost_model_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/cost_model_test.cc.o.d"
  "/root/repo/tests/datagen_test.cc" "tests/CMakeFiles/oodb_tests.dir/datagen_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/datagen_test.cc.o.d"
  "/root/repo/tests/dynamic_test.cc" "tests/CMakeFiles/oodb_tests.dir/dynamic_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/dynamic_test.cc.o.d"
  "/root/repo/tests/enforcer_test.cc" "tests/CMakeFiles/oodb_tests.dir/enforcer_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/enforcer_test.cc.o.d"
  "/root/repo/tests/exec_test.cc" "tests/CMakeFiles/oodb_tests.dir/exec_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/exec_test.cc.o.d"
  "/root/repo/tests/expr_rewrites_test.cc" "tests/CMakeFiles/oodb_tests.dir/expr_rewrites_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/expr_rewrites_test.cc.o.d"
  "/root/repo/tests/expr_test.cc" "tests/CMakeFiles/oodb_tests.dir/expr_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/expr_test.cc.o.d"
  "/root/repo/tests/extension_test.cc" "tests/CMakeFiles/oodb_tests.dir/extension_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/extension_test.cc.o.d"
  "/root/repo/tests/fuzz_test.cc" "tests/CMakeFiles/oodb_tests.dir/fuzz_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/fuzz_test.cc.o.d"
  "/root/repo/tests/greedy_test.cc" "tests/CMakeFiles/oodb_tests.dir/greedy_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/greedy_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/oodb_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/logical_op_test.cc" "tests/CMakeFiles/oodb_tests.dir/logical_op_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/logical_op_test.cc.o.d"
  "/root/repo/tests/logical_props_test.cc" "tests/CMakeFiles/oodb_tests.dir/logical_props_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/logical_props_test.cc.o.d"
  "/root/repo/tests/memo_test.cc" "tests/CMakeFiles/oodb_tests.dir/memo_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/memo_test.cc.o.d"
  "/root/repo/tests/oo7_test.cc" "tests/CMakeFiles/oodb_tests.dir/oo7_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/oo7_test.cc.o.d"
  "/root/repo/tests/operators_test.cc" "tests/CMakeFiles/oodb_tests.dir/operators_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/operators_test.cc.o.d"
  "/root/repo/tests/optimizer_test.cc" "tests/CMakeFiles/oodb_tests.dir/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/optimizer_test.cc.o.d"
  "/root/repo/tests/order_by_test.cc" "tests/CMakeFiles/oodb_tests.dir/order_by_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/order_by_test.cc.o.d"
  "/root/repo/tests/pruning_test.cc" "tests/CMakeFiles/oodb_tests.dir/pruning_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/pruning_test.cc.o.d"
  "/root/repo/tests/range_scan_test.cc" "tests/CMakeFiles/oodb_tests.dir/range_scan_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/range_scan_test.cc.o.d"
  "/root/repo/tests/schema_test.cc" "tests/CMakeFiles/oodb_tests.dir/schema_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/schema_test.cc.o.d"
  "/root/repo/tests/search_test.cc" "tests/CMakeFiles/oodb_tests.dir/search_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/search_test.cc.o.d"
  "/root/repo/tests/selectivity_test.cc" "tests/CMakeFiles/oodb_tests.dir/selectivity_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/selectivity_test.cc.o.d"
  "/root/repo/tests/session_test.cc" "tests/CMakeFiles/oodb_tests.dir/session_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/session_test.cc.o.d"
  "/root/repo/tests/simplify_test.cc" "tests/CMakeFiles/oodb_tests.dir/simplify_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/simplify_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/oodb_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/test_util.cc" "tests/CMakeFiles/oodb_tests.dir/test_util.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/test_util.cc.o.d"
  "/root/repo/tests/transformations_test.cc" "tests/CMakeFiles/oodb_tests.dir/transformations_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/transformations_test.cc.o.d"
  "/root/repo/tests/zql_test.cc" "tests/CMakeFiles/oodb_tests.dir/zql_test.cc.o" "gcc" "tests/CMakeFiles/oodb_tests.dir/zql_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/oodb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
