// Object schema: types, fields, and per-field statistics. The Open OODB data
// model here is the C++ type system as seen through ZQL[C++] (paper §3): an
// object has scalar fields, single references, and sets of references.
#ifndef OODB_CATALOG_SCHEMA_H_
#define OODB_CATALOG_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"

namespace oodb {

using TypeId = int32_t;
using FieldId = int32_t;

inline constexpr TypeId kInvalidType = -1;
inline constexpr FieldId kInvalidField = -1;

/// The storage kind of a field.
enum class FieldKind {
  kInt,     ///< 64-bit integer (also dates, encoded as days)
  kDouble,  ///< floating point
  kString,  ///< variable-length string
  kRef,     ///< single reference (OID) to an object of `target_type`
  kRefSet,  ///< set of references to objects of `target_type`
};

const char* FieldKindName(FieldKind kind);

/// One field of an object type, with the statistics the optimizer's
/// selectivity estimation consults.
struct FieldDef {
  std::string name;
  FieldKind kind = FieldKind::kInt;
  TypeId target_type = kInvalidType;  ///< for kRef / kRefSet
  /// Average bytes this field contributes to the stored object.
  int32_t avg_size = 8;
  /// Number of distinct values (0 = unknown -> default selectivity applies).
  int64_t distinct_values = 0;
  /// Average cardinality of the set, for kRefSet fields.
  double avg_set_card = 0.0;
  /// Value range statistics for numeric fields (min == max means unknown);
  /// used for range-predicate selectivity.
  int64_t min_value = 0;
  int64_t max_value = 0;

  bool has_range_stats() const { return max_value > min_value; }
};

/// An object type. Object sizes come from the catalog (paper Table 1), not
/// from summing fields, mirroring the paper's use of measured sizes.
class TypeDef {
 public:
  TypeDef(TypeId id, std::string name, int32_t object_size)
      : id_(id), name_(std::move(name)), object_size_(object_size) {}

  TypeId id() const { return id_; }
  const std::string& name() const { return name_; }
  /// Average stored size of one object of this type, in bytes.
  int32_t object_size() const { return object_size_; }
  TypeId supertype() const { return supertype_; }
  void set_supertype(TypeId t) { supertype_ = t; }

  /// Adds a field; returns its FieldId within this type.
  FieldId AddField(FieldDef field);

  const std::vector<FieldDef>& fields() const { return fields_; }
  const FieldDef& field(FieldId id) const { return fields_[id]; }
  FieldDef& mutable_field(FieldId id) { return fields_[id]; }
  bool has_field(FieldId id) const {
    return id >= 0 && id < static_cast<FieldId>(fields_.size());
  }

  /// Looks up a field by name (this type only; inheritance is resolved by
  /// Schema::ResolveField).
  Result<FieldId> FieldByName(const std::string& name) const;

 private:
  TypeId id_;
  std::string name_;
  int32_t object_size_;
  TypeId supertype_ = kInvalidType;
  std::vector<FieldDef> fields_;
};

/// The collection of all object types.
class Schema {
 public:
  /// Registers a type; returns its TypeId.
  TypeId AddType(std::string name, int32_t object_size);

  const TypeDef& type(TypeId id) const { return types_[id]; }
  TypeDef& mutable_type(TypeId id) { return types_[id]; }
  bool has_type(TypeId id) const {
    return id >= 0 && id < static_cast<TypeId>(types_.size());
  }
  int num_types() const { return static_cast<int>(types_.size()); }

  Result<TypeId> TypeByName(const std::string& name) const;

  /// Resolves a field by name on `type`, walking up the supertype chain.
  /// Returns the (owning type, field id) pair flattened to the FieldId in the
  /// queried type's field table (fields of supertypes are copied into
  /// subtypes at AddType time via InheritFields, so lookup is direct).
  Result<FieldId> ResolveField(TypeId type, const std::string& field) const;

  /// Copies all fields of `supertype` into `subtype` and records the
  /// supertype link. Must be called before adding subtype-specific fields.
  Status InheritFields(TypeId subtype, TypeId supertype);

  /// True if `sub` equals `super` or inherits from it transitively.
  bool IsSubtypeOf(TypeId sub, TypeId super) const;

 private:
  std::vector<TypeDef> types_;
};

}  // namespace oodb

#endif  // OODB_CATALOG_SCHEMA_H_
