// Branch-and-bound pruning (the paper's unevaluated "mechanisms for
// heuristic guidance and pruning"): pruning must never change the chosen
// plan's cost — only the search effort.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace oodb {
namespace {

class PruningTest : public ::testing::Test {
 protected:
  PruningTest() : db_(MakePaperCatalog()) {}
  PaperDb db_;
};

TEST_F(PruningTest, SameOptimalCostOnPaperQueries) {
  for (int n : {1, 2, 3, 4}) {
    QueryContext c1, c2;
    OptimizedQuery exhaustive = testing::MustOptimize(n, db_, &c1);
    OptimizerOptions opts;
    opts.enable_pruning = true;
    OptimizedQuery pruned = testing::MustOptimize(n, db_, &c2, opts);
    EXPECT_DOUBLE_EQ(pruned.cost.total(), exhaustive.cost.total())
        << "query " << n;
  }
}

TEST_F(PruningTest, SamePlanShapeOnQuery1) {
  QueryContext c1, c2;
  OptimizedQuery exhaustive = testing::MustOptimize(1, db_, &c1);
  OptimizerOptions opts;
  opts.enable_pruning = true;
  OptimizedQuery pruned = testing::MustOptimize(1, db_, &c2, opts);
  EXPECT_EQ(testing::PlanKinds(*pruned.plan), testing::PlanKinds(*exhaustive.plan));
}

TEST_F(PruningTest, SearchEffortStaysComparableOnSmallQueries) {
  // On tiny memos pruning can cost a few re-searches (an abandoned
  // (group, properties) pair is re-optimized when a caller arrives with a
  // larger budget); assert it stays within a small constant of exhaustive.
  for (int n : {1, 2, 3, 4}) {
    QueryContext c1, c2;
    OptimizedQuery exhaustive = testing::MustOptimize(n, db_, &c1);
    OptimizerOptions opts;
    opts.enable_pruning = true;
    OptimizedQuery pruned = testing::MustOptimize(n, db_, &c2, opts);
    EXPECT_LE(pruned.stats.phys_alternatives,
              exhaustive.stats.phys_alternatives + 10)
        << "query " << n;
  }
}

TEST_F(PruningTest, SameCostUnderRuleAblations) {
  struct Config {
    std::vector<std::string> disabled;
  };
  Config configs[] = {
      {{kRuleJoinCommute}},
      {{kImplIndexScan}},
      {{kRuleMatToJoin}},
      {{kImplHybridHashJoin}},
  };
  for (int n : {1, 2, 3, 4}) {
    for (const Config& config : configs) {
      OptimizerOptions base;
      base.disabled_rules = config.disabled;
      OptimizerOptions with = base;
      with.enable_pruning = true;
      QueryContext c1, c2;
      OptimizedQuery a = testing::MustOptimize(n, db_, &c1, base);
      OptimizedQuery b = testing::MustOptimize(n, db_, &c2, with);
      EXPECT_DOUBLE_EQ(a.cost.total(), b.cost.total()) << "query " << n;
    }
  }
}

TEST_F(PruningTest, SameCostAcrossIndexConfigurations) {
  for (bool time_idx : {false, true}) {
    for (bool name_idx : {false, true}) {
      ASSERT_TRUE(db_.catalog.SetIndexEnabled(kIdxTasksTime, time_idx).ok());
      ASSERT_TRUE(
          db_.catalog.SetIndexEnabled(kIdxEmployeesName, name_idx).ok());
      QueryContext c1, c2;
      OptimizedQuery a = testing::MustOptimize(4, db_, &c1);
      OptimizerOptions opts;
      opts.enable_pruning = true;
      OptimizedQuery b = testing::MustOptimize(4, db_, &c2, opts);
      EXPECT_DOUBLE_EQ(a.cost.total(), b.cost.total());
    }
  }
  ASSERT_TRUE(db_.catalog.SetIndexEnabled(kIdxTasksTime, true).ok());
  ASSERT_TRUE(db_.catalog.SetIndexEnabled(kIdxEmployeesName, true).ok());
}

TEST_F(PruningTest, ComplexJoinChainSameCostLessEffort) {
  // A 4-way join has enough alternatives for the bound to bite.
  const char* text =
      "SELECT e1.name FROM Employee e1 IN Employees, Employee e2 IN "
      "Employees, Employee e3 IN Employees, Employee e4 IN Employees "
      "WHERE e1.name == e2.name && e2.age == e3.age && "
      "e3.salary == e4.salary;";
  auto run = [&](bool prune) {
    QueryContext ctx;
    ctx.catalog = &db_.catalog;
    auto logical = ParseAndSimplify(text, &ctx);
    EXPECT_TRUE(logical.ok());
    OptimizerOptions opts;
    opts.enable_pruning = prune;
    Optimizer opt(&db_.catalog, opts);
    auto r = opt.Optimize(**logical, &ctx);
    EXPECT_TRUE(r.ok()) << r.status();
    return *std::move(r);
  };
  OptimizedQuery exhaustive = run(false);
  OptimizedQuery pruned = run(true);
  EXPECT_DOUBLE_EQ(pruned.cost.total(), exhaustive.cost.total());
  EXPECT_LT(pruned.stats.phys_alternatives,
            exhaustive.stats.phys_alternatives);
}

}  // namespace
}  // namespace oodb
