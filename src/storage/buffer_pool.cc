#include "src/storage/buffer_pool.h"

#include "src/common/metrics.h"

namespace oodb {

namespace {

/// Process-wide hit/miss totals across every pool instance (per-pool counts
/// live in hits()/misses()). Resolved once; counters are never deallocated.
struct BufferMetrics {
  Counter* hits;
  Counter* misses;

  static const BufferMetrics& Get() {
    static const BufferMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      BufferMetrics m;
      m.hits = r.counter("oodb_buffer_pool_hits_total",
                         "Page accesses served from the buffer pool.");
      m.misses = r.counter("oodb_buffer_pool_misses_total",
                           "Page accesses that went to the simulated disk.");
      return m;
    }();
    return m;
  }
};

}  // namespace

Status BufferPool::Access(PageId page) {
  if (faults_ != nullptr) OODB_RETURN_IF_ERROR(faults_->OnPageAccess(page));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(page);
  if (it != index_.end()) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    BufferMetrics::Get().hits->Increment();
    lru_.splice(lru_.begin(), lru_, it->second);
    return Status::OK();
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  BufferMetrics::Get().misses->Increment();
  // The disk read stays inside the critical section so that the miss, its
  // arm movement, and the eviction are one atomic event — concurrent
  // workers observe a consistent LRU and a serializable read sequence.
  disk_->Read(page);
  lru_.push_front(page);
  index_[page] = lru_.begin();
  if (static_cast<int64_t>(lru_.size()) > capacity_) {
    index_.erase(lru_.back());
    lru_.pop_back();
  }
  return Status::OK();
}

void BufferPool::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace oodb
