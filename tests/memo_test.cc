#include <gtest/gtest.h>

#include "src/catalog/paper_catalog.h"
#include "src/volcano/memo.h"

namespace oodb {
namespace {

class MemoTest : public ::testing::Test {
 protected:
  MemoTest() : db_(MakePaperCatalog()) {
    ctx_.catalog = &db_.catalog;
    c_ = ctx_.bindings.AddGet("c", db_.city);
    m_ = ctx_.bindings.AddMat("c.mayor", db_.person, c_, db_.city_mayor);
    k_ = ctx_.bindings.AddMat("c.country", db_.country, c_, db_.city_country);
  }

  LogicalExprPtr Cities() {
    return LogicalExpr::Make(
        LogicalOp::Get(CollectionId::Set("Cities", db_.city), c_));
  }

  PaperDb db_;
  QueryContext ctx_;
  BindingId c_, m_, k_;
};

TEST_F(MemoTest, InsertTreeCreatesGroups) {
  Memo memo(&ctx_);
  auto tree = LogicalExpr::Make(LogicalOp::Mat(c_, db_.city_mayor, m_),
                                {Cities()});
  auto root = memo.InsertTree(*tree);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(memo.num_groups(), 2);
  EXPECT_EQ(memo.num_mexprs(), 2);
  EXPECT_DOUBLE_EQ(memo.group(*root).props.card, 10000);
}

TEST_F(MemoTest, DuplicateSubtreesShareGroups) {
  // Common subexpression factorization "for free" (paper §2): two identical
  // Get subtrees land in one group.
  Memo memo(&ctx_);
  auto t1 = LogicalExpr::Make(LogicalOp::Mat(c_, db_.city_mayor, m_), {Cities()});
  auto t2 = LogicalExpr::Make(LogicalOp::Mat(c_, db_.city_country, k_), {Cities()});
  ASSERT_TRUE(memo.InsertTree(*t1).ok());
  ASSERT_TRUE(memo.InsertTree(*t2).ok());
  EXPECT_EQ(memo.num_groups(), 3);  // Get, Mat-mayor, Mat-country
  EXPECT_EQ(memo.num_mexprs(), 3);
}

TEST_F(MemoTest, ReinsertingSameTreeIsIdempotent) {
  Memo memo(&ctx_);
  auto tree = LogicalExpr::Make(LogicalOp::Mat(c_, db_.city_mayor, m_), {Cities()});
  auto r1 = memo.InsertTree(*tree);
  auto r2 = memo.InsertTree(*tree);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r1, *r2);
  EXPECT_EQ(memo.num_mexprs(), 2);
}

TEST_F(MemoTest, RuleExprInsertionIntoGroup) {
  Memo memo(&ctx_);
  auto tree = LogicalExpr::Make(
      LogicalOp::Select(ScalarExpr::AttrEqStr(m_, db_.person_name, "Joe")),
      {LogicalExpr::Make(LogicalOp::Mat(c_, db_.city_mayor, m_), {Cities()})});
  auto root = memo.InsertTree(*tree);
  ASSERT_TRUE(root.ok());
  int before = memo.num_mexprs();

  // Insert an equivalent expression (as a rule would) into the root group.
  GroupId mat_group = memo.Find(
      memo.mexpr(memo.group(*root).mexprs[0]).children[0]);
  RuleExprPtr alt = RuleExpr::Op(
      LogicalOp::Select(ScalarExpr::AttrEqStr(m_, db_.person_name, "Joe")),
      {RuleExpr::GroupLeaf(mat_group)});
  auto inserted = memo.InsertRuleExpr(alt, *root);
  ASSERT_TRUE(inserted.ok());
  EXPECT_EQ(*inserted, kInvalidMExpr);  // duplicate of the existing root
  EXPECT_EQ(memo.num_mexprs(), before);
}

TEST_F(MemoTest, RuleExprCreatesNewChildGroups) {
  Memo memo(&ctx_);
  auto tree = LogicalExpr::Make(LogicalOp::Mat(c_, db_.city_mayor, m_), {Cities()});
  auto root = memo.InsertTree(*tree);
  ASSERT_TRUE(root.ok());

  // Mat -> Join rewrite: new Join m-expr in the root group with a brand new
  // Get(extent(Person)) child group.
  RuleExprPtr join = RuleExpr::Op(
      LogicalOp::Join(ScalarExpr::RefEq(c_, db_.city_mayor, m_)),
      {RuleExpr::GroupLeaf(memo.Find(
           memo.mexpr(memo.group(*root).mexprs[0]).children[0])),
       RuleExpr::Op(LogicalOp::Get(CollectionId::Extent(db_.person), m_))});
  auto inserted = memo.InsertRuleExpr(join, *root);
  ASSERT_TRUE(inserted.ok());
  EXPECT_NE(*inserted, kInvalidMExpr);
  EXPECT_EQ(memo.num_groups(), 3);
  EXPECT_EQ(memo.group(*root).mexprs.size(), 2u);
}

TEST_F(MemoTest, GroupMergeOnEquivalenceDiscovery) {
  Memo memo(&ctx_);
  // Two separately inserted trees with a shared leaf.
  auto a = LogicalExpr::Make(LogicalOp::Mat(c_, db_.city_mayor, m_), {Cities()});
  auto root_a = memo.InsertTree(*a);
  ASSERT_TRUE(root_a.ok());
  auto b = LogicalExpr::Make(LogicalOp::Mat(c_, db_.city_country, k_), {Cities()});
  auto root_b = memo.InsertTree(*b);
  ASSERT_TRUE(root_b.ok());
  ASSERT_NE(memo.Find(*root_a), memo.Find(*root_b));
  int groups_before = memo.num_groups();

  // A rule "discovers" that root_b's expression also belongs to root_a's
  // group: inserting it there must merge the two groups.
  GroupId get_group = memo.Find(
      memo.mexpr(memo.group(*root_b).mexprs[0]).children[0]);
  RuleExprPtr same_as_b = RuleExpr::Op(LogicalOp::Mat(c_, db_.city_country, k_),
                                       {RuleExpr::GroupLeaf(get_group)});
  ASSERT_TRUE(memo.InsertRuleExpr(same_as_b, *root_a).ok());
  EXPECT_EQ(memo.Find(*root_a), memo.Find(*root_b));
  EXPECT_EQ(memo.num_groups(), groups_before - 1);
}

TEST_F(MemoTest, ChildGroupCanonicalization) {
  Memo memo(&ctx_);
  auto tree = LogicalExpr::Make(LogicalOp::Mat(c_, db_.city_mayor, m_), {Cities()});
  auto root = memo.InsertTree(*tree);
  ASSERT_TRUE(root.ok());
  const LogicalMExpr& mat = memo.mexpr(memo.group(*root).mexprs[0]);
  EXPECT_EQ(memo.ChildGroup(mat, 0), memo.Find(mat.children[0]));
}

TEST_F(MemoTest, ToStringListsGroups) {
  Memo memo(&ctx_);
  auto tree = LogicalExpr::Make(LogicalOp::Mat(c_, db_.city_mayor, m_), {Cities()});
  ASSERT_TRUE(memo.InsertTree(*tree).ok());
  std::string dump = memo.ToString();
  EXPECT_NE(dump.find("group 0"), std::string::npos);
  EXPECT_NE(dump.find("Mat c.mayor"), std::string::npos);
}

TEST_F(MemoTest, BareGroupRootRejected) {
  Memo memo(&ctx_);
  auto root = memo.InsertTree(*Cities());
  ASSERT_TRUE(root.ok());
  auto r = memo.InsertRuleExpr(RuleExpr::GroupLeaf(*root), *root);
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace oodb
