#include "src/volcano/memo.h"

#include <algorithm>
#include <sstream>

namespace oodb {

RuleExprPtr RuleExpr::GroupLeaf(GroupId g) {
  auto e = std::make_shared<RuleExpr>();
  e->is_group = true;
  e->group = g;
  return e;
}

RuleExprPtr RuleExpr::Op(LogicalOp op, std::vector<RuleExprPtr> children) {
  auto e = std::make_shared<RuleExpr>();
  e->op = std::move(op);
  e->children = std::move(children);
  return e;
}

size_t Memo::KeyHash::operator()(const MExprKey& k) const {
  size_t h = k.op_hash;
  for (GroupId g : k.children) {
    h = h * 1099511628211ull + static_cast<size_t>(g) + 0x9e37;
  }
  return h;
}

bool Memo::KeyEq::operator()(const MExprKey& a, const MExprKey& b) const {
  return a.op_hash == b.op_hash && a.children == b.children && a.op == b.op;
}

GroupId Memo::Find(GroupId g) const {
  while (parent_link_[g] != g) {
    parent_link_[g] = parent_link_[parent_link_[g]];  // path halving
    g = parent_link_[g];
  }
  return g;
}

int Memo::num_groups() const {
  int n = 0;
  for (GroupId g = 0; g < static_cast<GroupId>(groups_.size()); ++g) {
    if (Find(g) == g) ++n;
  }
  return n;
}

Result<LogicalProps> Memo::DeriveProps(
    const LogicalOp& op, const std::vector<GroupId>& children) const {
  std::vector<LogicalProps> child_props;
  child_props.reserve(children.size());
  for (GroupId c : children) child_props.push_back(group(c).props);
  return DeriveLogicalProps(op, child_props, *ctx_);
}

Status Memo::Merge(GroupId a, GroupId b) {
  a = Find(a);
  b = Find(b);
  if (a == b) return Status::OK();
  if (!groups_[a].winners.empty() || !groups_[b].winners.empty()) {
    return Status::Internal("group merge after optimization began");
  }
  // Keep the smaller id as representative.
  if (b < a) std::swap(a, b);
  parent_link_[b] = a;
  Group& rep = groups_[a];
  Group& merged = groups_[b];
  for (MExprId m : merged.mexprs) {
    mexprs_[m].group = a;
    rep.mexprs.push_back(m);
  }
  merged.mexprs.clear();
  rep.parents.insert(rep.parents.end(), merged.parents.begin(),
                     merged.parents.end());
  merged.parents.clear();
  return Status::OK();
}

Result<std::pair<MExprId, bool>> Memo::Insert(LogicalOp op,
                                              std::vector<GroupId> children,
                                              GroupId target) {
  for (GroupId& c : children) c = Find(c);
  if (target != kInvalidGroup) target = Find(target);

  // op.Hash() walks predicate/emit expression trees; hash once and carry
  // the result in the key (KeyEq short-circuits on op_hash before falling
  // back to the deep LogicalOp comparison).
  MExprKey key{op.Hash(), op, children};
  auto it = index_.find(key);
  if (it != index_.end()) {
    MExprId existing = it->second;
    GroupId existing_group = Find(mexprs_[existing].group);
    if (target != kInvalidGroup && existing_group != target) {
      OODB_RETURN_IF_ERROR(Merge(existing_group, target));
    }
    return std::make_pair(existing, false);
  }

  GroupId g = target;
  if (g == kInvalidGroup) {
    OODB_ASSIGN_OR_RETURN(LogicalProps props, DeriveProps(op, children));
    g = static_cast<GroupId>(groups_.size());
    groups_.emplace_back();
    groups_[g].id = g;
    groups_[g].props = props;
    parent_link_.push_back(g);
  }

  MExprId id = static_cast<MExprId>(mexprs_.size());
  LogicalMExpr m;
  m.id = id;
  m.group = g;
  m.op = std::move(op);  // the key keeps its own copy for the index
  m.children = children;
  mexprs_.push_back(std::move(m));
  groups_[g].mexprs.push_back(id);
  for (GroupId c : children) {
    groups_[Find(c)].parents.push_back(id);
  }
  index_.emplace(std::move(key), id);
  return std::make_pair(id, true);
}

Result<GroupId> Memo::InsertTreeRec(const LogicalExpr& tree) {
  std::vector<GroupId> children;
  children.reserve(tree.children.size());
  for (const LogicalExprPtr& c : tree.children) {
    OODB_ASSIGN_OR_RETURN(GroupId g, InsertTreeRec(*c));
    children.push_back(g);
  }
  OODB_ASSIGN_OR_RETURN(auto inserted,
                        Insert(tree.op, std::move(children), kInvalidGroup));
  return Find(mexprs_[inserted.first].group);
}

namespace {
int CountTreeNodes(const LogicalExpr& tree) {
  int n = 1;
  for (const LogicalExprPtr& c : tree.children) n += CountTreeNodes(*c);
  return n;
}
}  // namespace

Result<GroupId> Memo::InsertTree(const LogicalExpr& tree) {
  // Pre-size the structures from the input: exploration typically grows the
  // memo to a small multiple of the tree, so reserving here removes the
  // rehash/realloc churn of the early expansion.
  int n = CountTreeNodes(tree);
  groups_.reserve(groups_.size() + n);
  mexprs_.reserve(mexprs_.size() + 4 * n);
  parent_link_.reserve(parent_link_.size() + n);
  index_.reserve(index_.size() + 4 * n);
  return InsertTreeRec(tree);
}

Result<GroupId> Memo::InsertRec(const RuleExprPtr& expr) {
  if (expr->is_group) return Find(expr->group);
  std::vector<GroupId> children;
  children.reserve(expr->children.size());
  for (const RuleExprPtr& c : expr->children) {
    OODB_ASSIGN_OR_RETURN(GroupId g, InsertRec(c));
    children.push_back(g);
  }
  OODB_ASSIGN_OR_RETURN(auto inserted,
                        Insert(expr->op, std::move(children), kInvalidGroup));
  return Find(mexprs_[inserted.first].group);
}

Result<MExprId> Memo::InsertRuleExpr(const RuleExprPtr& expr, GroupId target) {
  if (expr->is_group) {
    // A rule may only rewrite to an operator tree, not to a bare group.
    return Status::Internal("rule produced a bare group as its root");
  }
  std::vector<GroupId> children;
  children.reserve(expr->children.size());
  for (const RuleExprPtr& c : expr->children) {
    OODB_ASSIGN_OR_RETURN(GroupId g, InsertRec(c));
    children.push_back(g);
  }
  OODB_ASSIGN_OR_RETURN(auto inserted,
                        Insert(expr->op, std::move(children), target));
  return inserted.second ? inserted.first : kInvalidMExpr;
}

std::string Memo::ToString() const {
  std::ostringstream os;
  for (GroupId g = 0; g < static_cast<GroupId>(groups_.size()); ++g) {
    if (Find(g) != g) continue;
    const Group& grp = groups_[g];
    os << "group " << g << " [card " << grp.props.card << "]\n";
    for (MExprId m : grp.mexprs) {
      os << "  #" << m << " " << mexprs_[m].op.ToString(*ctx_) << " (";
      for (size_t i = 0; i < mexprs_[m].children.size(); ++i) {
        if (i > 0) os << ", ";
        os << Find(mexprs_[m].children[i]);
      }
      os << ")\n";
    }
  }
  return os.str();
}

}  // namespace oodb
