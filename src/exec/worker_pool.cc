#include "src/exec/worker_pool.h"

#include <utility>

#include "src/common/metrics.h"

namespace oodb {

namespace {

/// Pool activity for the metrics snapshot: cumulative tasks and the
/// high-water thread count. Resolved once; metrics are never deallocated.
struct PoolMetrics {
  Counter* tasks;
  Gauge* threads;

  static const PoolMetrics& Get() {
    static const PoolMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      PoolMetrics m;
      m.tasks = r.counter("oodb_worker_pool_tasks_total",
                          "Tasks submitted to the shared worker pool.");
      m.threads = r.gauge("oodb_worker_pool_threads",
                          "Threads the shared worker pool has spawned.");
      return m;
    }();
    return m;
  }
};

}  // namespace

WorkerPool& WorkerPool::Instance() {
  static WorkerPool pool;
  return pool;
}

WorkerPool::~WorkerPool() {
  // Claim the threads under the lock, then join them unlocked: a joining
  // worker must reacquire mu_ to observe stop_, so joining while holding it
  // would deadlock (and the analysis would rightly reject the unguarded
  // threads_ walk the old code did).
  std::vector<std::thread> threads;
  {
    MutexLock lock(mu_);
    stop_ = true;
    threads.swap(threads_);
  }
  cv_.NotifyAll();
  for (std::thread& t : threads) t.join();
}

void WorkerPool::Submit(std::function<void()> fn) {
  PoolMetrics::Get().tasks->Increment();
  {
    MutexLock lock(mu_);
    tasks_.push_back(std::move(fn));
    if (idle_ == 0) {
      threads_.emplace_back(&WorkerPool::Loop, this);
      PoolMetrics::Get().threads->Set(static_cast<double>(threads_.size()));
    }
  }
  cv_.NotifyOne();
}

void WorkerPool::Loop() {
  UniqueLock lock(mu_);
  while (true) {
    ++idle_;
    while (tasks_.empty() && !stop_) cv_.Wait(lock);
    --idle_;
    if (stop_) return;
    std::function<void()> task = std::move(tasks_.front());
    tasks_.pop_front();
    lock.Unlock();
    task();
    lock.Lock();
  }
}

}  // namespace oodb
