#include "src/trace/card_feedback.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace oodb {

namespace {

// Ratio clamps: feedback must never produce a zero cardinality (downstream
// costing divides by cards), and a partial profile's "no rows seen yet" is
// reported as half a row rather than a hard zero.
constexpr double kMinSelectivity = 1e-9;
constexpr double kMinFanout = 0.01;

double ClampSel(double sel) {
  return std::clamp(sel, kMinSelectivity, 1.0);
}

}  // namespace

void CardFeedback::RecordScanCard(const CollectionId& id, double card) {
  scan_cards_[CollectionKey(id)] = std::max(card, 0.0);
}

void CardFeedback::RecordSelectivity(size_t conjunct_hash, double sel) {
  selectivities_[conjunct_hash] = ClampSel(sel);
}

void CardFeedback::RecordJoinSelectivity(size_t pred_hash, double sel) {
  join_selectivities_[pred_hash] = ClampSel(sel);
}

void CardFeedback::RecordUnnestFanout(TypeId type, FieldId field,
                                      double fanout) {
  unnest_fanouts_[FieldKey(type, field)] = std::max(fanout, kMinFanout);
}

std::optional<double> CardFeedback::ScanCard(const CollectionId& id) const {
  auto it = scan_cards_.find(CollectionKey(id));
  if (it == scan_cards_.end()) return std::nullopt;
  return it->second;
}

std::optional<double> CardFeedback::Selectivity(size_t conjunct_hash) const {
  auto it = selectivities_.find(conjunct_hash);
  if (it == selectivities_.end()) return std::nullopt;
  return it->second;
}

std::optional<double> CardFeedback::JoinSelectivity(size_t pred_hash) const {
  auto it = join_selectivities_.find(pred_hash);
  if (it == join_selectivities_.end()) return std::nullopt;
  return it->second;
}

std::optional<double> CardFeedback::UnnestFanout(TypeId type,
                                                FieldId field) const {
  auto it = unnest_fanouts_.find(FieldKey(type, field));
  if (it == unnest_fanouts_.end()) return std::nullopt;
  return it->second;
}

std::string CardFeedback::Summary() const {
  std::string s = "feedback: ";
  s += std::to_string(scan_cards_.size()) + " scans, ";
  s += std::to_string(selectivities_.size()) + " conjuncts, ";
  s += std::to_string(join_selectivities_.size()) + " joins, ";
  s += std::to_string(unnest_fanouts_.size()) + " unnests";
  return s;
}

std::string CardFeedback::CollectionKey(const CollectionId& id) {
  std::string key = id.kind == CollectionId::Kind::kNamedSet ? "s:" : "e:";
  key += id.name;
  key += '#';
  key += std::to_string(id.type);
  return key;
}

namespace {

class Extractor {
 public:
  Extractor(const ExecProfile& profile, const QueryContext& ctx,
            const ObjectStore& store, CardFeedback* out)
      : profile_(profile), ctx_(ctx), store_(store), out_(out) {}

  void Visit(const PlanNode& node) {
    switch (node.op.kind) {
      case PhysOpKind::kFileScan:
      case PhysOpKind::kIndexScan:
        RecordScan(node);
        break;
      case PhysOpKind::kFilter:
        RecordFilterChain(node);
        break;
      case PhysOpKind::kAlgUnnest:
        RecordUnnest(node);
        break;
      case PhysOpKind::kHybridHashJoin:
      case PhysOpKind::kMergeJoin:
      case PhysOpKind::kNestedLoops:
        RecordJoin(node);
        break;
      default:
        break;
    }
    for (const PlanNodePtr& c : node.children) Visit(*c);
  }

 private:
  /// Actual rows the node emitted, or -1 when the node has no profile of
  /// its own (a filter absorbed into a fused chain).
  double ActualRows(const PlanNode& node) const {
    const OpProfile* p = profile_.Find(&node);
    return p != nullptr ? static_cast<double>(p->rows) : -1.0;
  }

  /// The store's current member count for a scanned collection, or -1.
  double MemberCount(const CollectionId& id) const {
    Result<const std::vector<Oid>*> members = store_.CollectionMembers(id);
    if (!members.ok()) return -1.0;
    return static_cast<double>((*members)->size());
  }

  /// Splits a combined observed selectivity geometrically across conjuncts:
  /// each conjunct gets sel^(1/k), so the product — and with it the chain's
  /// output cardinality — is preserved no matter where the re-plan places
  /// each conjunct.
  void RecordConjuncts(const std::vector<ScalarExprPtr>& conjuncts,
                       double sel) {
    if (conjuncts.empty()) return;
    double per =
        std::pow(ClampSel(sel), 1.0 / static_cast<double>(conjuncts.size()));
    for (const ScalarExprPtr& c : conjuncts) {
      if (c != nullptr) out_->RecordSelectivity(c->Hash(), per);
    }
  }

  void RecordScan(const PlanNode& node) {
    double members = MemberCount(node.op.coll);
    if (members >= 0.0) out_->RecordScanCard(node.op.coll, members);
    // An index scan's output already reflects its key predicate (and any
    // residual): actual-out over the population is the combined selectivity.
    if (node.op.kind != PhysOpKind::kIndexScan) return;
    double out_rows = ActualRows(node);
    if (members <= 0.0 || out_rows < 0.0) return;
    std::vector<ScalarExprPtr> conjuncts;
    if (node.op.index_pred != nullptr) {
      std::vector<ScalarExprPtr> cs =
          ScalarExpr::SplitConjuncts(node.op.index_pred);
      conjuncts.insert(conjuncts.end(), cs.begin(), cs.end());
    }
    if (node.op.pred != nullptr) {
      std::vector<ScalarExprPtr> cs = ScalarExpr::SplitConjuncts(node.op.pred);
      conjuncts.insert(conjuncts.end(), cs.begin(), cs.end());
    }
    RecordConjuncts(conjuncts, std::max(out_rows, 0.5) / members);
  }

  void RecordFilterChain(const PlanNode& node) {
    // Only chain tops have a profile; absorbed inner filters are handled
    // from their top when the chain was collapsed at exec-build time.
    double out_rows = ActualRows(node);
    if (out_rows < 0.0 || node.op.pred == nullptr) return;
    std::vector<ScalarExprPtr> conjuncts;
    const PlanNode* base = &node;
    while (base->op.kind == PhysOpKind::kFilter && base->op.pred != nullptr) {
      std::vector<ScalarExprPtr> cs = ScalarExpr::SplitConjuncts(base->op.pred);
      conjuncts.insert(conjuncts.end(), cs.begin(), cs.end());
      base = base->children[0].get();
    }
    double in_rows = ActualRows(*base);
    if (in_rows < 0.0 && base->op.kind == PhysOpKind::kFileScan) {
      // Scan-fused chain: the scan below has no profile of its own, but its
      // input is by definition the whole collection — ask the store.
      in_rows = MemberCount(base->op.coll);
    }
    if (in_rows <= 0.0) return;
    RecordConjuncts(conjuncts, std::max(out_rows, 0.5) / in_rows);
  }

  void RecordUnnest(const PlanNode& node) {
    double out_rows = ActualRows(node);
    double in_rows = ActualRows(*node.children[0]);
    if (out_rows <= 0.0 || in_rows <= 0.0) return;
    TypeId src_type = ctx_.bindings.def(node.op.source).type;
    out_->RecordUnnestFanout(src_type, node.op.field, out_rows / in_rows);
  }

  void RecordJoin(const PlanNode& node) {
    if (node.op.pred == nullptr) return;
    double out_rows = ActualRows(node);
    double left = ActualRows(*node.children[0]);
    double right = ActualRows(*node.children[1]);
    // Both inputs must have produced rows: after a build-side drift abort
    // the probe side never opened, and a 0-row input says nothing about the
    // predicate.
    if (out_rows < 0.0 || left <= 0.0 || right <= 0.0) return;
    out_->RecordJoinSelectivity(node.op.pred->Hash(),
                                std::max(out_rows, 0.5) / (left * right));
  }

  const ExecProfile& profile_;
  const QueryContext& ctx_;
  const ObjectStore& store_;
  CardFeedback* out_;
};

}  // namespace

CardFeedback ExtractCardFeedback(const PlanNode& plan,
                                 const ExecProfile& profile,
                                 const QueryContext& ctx,
                                 const ObjectStore& store) {
  CardFeedback out;
  Extractor(profile, ctx, store, &out).Visit(plan);
  return out;
}

}  // namespace oodb
