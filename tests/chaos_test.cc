// Chaos suite (`ctest -L chaos`; CI repeats it under ASan and TSan with
// pinned seeds): randomized exec-layer fault injection across vectorize
// on/off, DOP 1/4, fault kind (deterministic kill, probabilistic kill,
// straggler, queue stall), and seeds. The invariant under chaos is the
// tentpole's: every execution either returns the fault-free reference
// result multiset bit for bit, or a clean *typed* Status — never a crash,
// a hang, a torn batch, a duplicated or missing row, or a leaked pooled
// arena.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/rng.h"
#include "src/exec/reference.h"
#include "src/workloads/oo7.h"
#include "tests/test_util.h"

namespace oodb {
namespace {

Oo7Options ChaosConfig() {
  Oo7Options o;
  o.complex_per_module = 3;
  o.base_per_complex = 5;
  o.components_per_base = 3;
  o.num_composite_parts = 25;
  o.atomic_per_composite = 8;
  o.num_build_dates = 10;
  o.num_doc_titles = 5;
  return o;
}

/// The typed Statuses a chaotic execution may legally end with. Anything
/// else — in particular kInternal, which the Exchange recovery path uses to
/// flag a duplicate partition delivery — fails the suite.
bool IsCleanTypedFailure(StatusCode code) {
  return code == StatusCode::kWorkerFault ||
         code == StatusCode::kStorageFault ||
         code == StatusCode::kDeadlineExceeded ||
         code == StatusCode::kBudgetExhausted ||
         code == StatusCode::kCancelled;
}

std::string RandomOo7Query(Rng& rng) {
  switch (rng.Uniform(5)) {
    case 0:
      return "SELECT a.id, a.x FROM AtomicPart a IN AtomicParts WHERE a.x > " +
             std::to_string(rng.UniformRange(0, 999)) + ";";
    case 1:
      return "SELECT a.id FROM AtomicPart a IN AtomicParts "
             "WHERE a.x > a.y && a.buildDate >= " +
             std::to_string(rng.UniformRange(0, 9)) + ";";
    case 2:
      return "SELECT a.id, p.id FROM AtomicPart a IN AtomicParts, "
             "CompositePart p IN CompositeParts "
             "WHERE a.partOf == p && p.buildDate >= " +
             std::to_string(rng.UniformRange(0, 9)) + ";";
    case 3:
      return kOo7QueryNewerComponents;
    default:
      return "SELECT b.id, b.buildDate FROM BaseAssembly b IN BaseAssemblies "
             "WHERE b.buildDate >= " +
             std::to_string(rng.UniformRange(0, 9)) +
             " ORDER BY b.buildDate;";
  }
}

/// A randomized fault policy: one of the four injectable fault kinds, with
/// randomized site parameters. `transient` controls fail/slow_attempts so a
/// case can demand recovery-must-win (transient) or typed-terminal
/// (permanent) behavior.
ExecFaultPolicy RandomFaultPolicy(Rng& rng, int dop, bool transient) {
  ExecFaultPolicy p;
  p.seed = rng.Next();
  switch (rng.Uniform(4)) {
    case 0:  // deterministic worker kill
      p.fail_worker = static_cast<int>(rng.Uniform(std::max(1, dop)));
      p.fail_after_batches = 1 + static_cast<int64_t>(rng.Uniform(3));
      p.fail_attempts = transient ? 1 + static_cast<int>(rng.Uniform(2)) : 1000;
      break;
    case 1:  // probabilistic kill at operator Next() granularity
      p.fail_probability = 0.02 + 0.08 * rng.NextDouble();
      p.fail_attempts = transient ? 1 : 1000;
      break;
    case 2:  // straggler
      p.slow_worker = static_cast<int>(rng.Uniform(std::max(1, dop)));
      p.slow_ms = 0.5;
      p.slow_sim_s = 0.001;
      p.slow_attempts = 1;
      break;
    default:  // bounded queue stall
      p.stall_pushes = 1 + static_cast<int64_t>(rng.Uniform(4));
      p.stall_ms = 0.5;
      break;
  }
  return p;
}

class ChaosTest : public ::testing::TestWithParam<int> {
 protected:
  static Oo7Instance* instance_;

  static void SetUpTestSuite() {
    auto r = MakeOo7(ChaosConfig());
    ASSERT_TRUE(r.ok()) << r.status();
    instance_ = new Oo7Instance(std::move(r).value());
  }
  static void TearDownTestSuite() {
    delete instance_;
    instance_ = nullptr;
  }

  static Catalog& catalog() { return instance_->db->catalog; }
  static ObjectStore& store() { return *instance_->store; }

  struct Planned {
    QueryContext ctx;
    LogicalExprPtr logical;
    PlanNodePtr plan;
  };

  static Planned Plan(const std::string& text, int max_dop = 1) {
    Planned out;
    out.ctx.catalog = &catalog();
    SortSpec order;
    int64_t limit = 0;
    auto logical = ParseAndSimplify(text, &out.ctx, &order, &limit);
    EXPECT_TRUE(logical.ok()) << logical.status() << "\n" << text;
    out.logical = *logical;
    OptimizerOptions opts;
    opts.max_dop = max_dop;
    opts.verify_plans = true;
    PhysProps required;
    required.sort = order;
    required.limit = limit;
    Optimizer opt(&catalog(), std::move(opts));
    auto planned = opt.Optimize(*out.logical, &out.ctx, required);
    EXPECT_TRUE(planned.ok()) << planned.status() << "\n" << text;
    out.plan = planned->plan;
    return out;
  }

  static std::vector<std::string> SortedRows(
      const std::vector<std::vector<Value>>& rows) {
    std::vector<std::string> out;
    for (const std::vector<Value>& row : rows) {
      std::string s;
      for (const Value& v : row) {
        s += v.ToString();
        s += '|';
      }
      out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  static std::vector<std::string> Reference(const Planned& p) {
    auto reference = EvaluateReference(*p.logical, &store(), p.ctx);
    EXPECT_TRUE(reference.ok()) << reference.status();
    return SortedRows(reference->rows);
  }

  /// Rows rendered in delivery order — the oracle for ordered queries.
  static std::vector<std::string> RowSeq(
      const std::vector<std::vector<Value>>& rows) {
    std::vector<std::string> out;
    for (const std::vector<Value>& row : rows) {
      std::string s;
      for (const Value& v : row) {
        s += v.ToString();
        s += '|';
      }
      out.push_back(std::move(s));
    }
    return out;
  }
};

Oo7Instance* ChaosTest::instance_ = nullptr;

// The query every directed (non-sweep) case uses: large scan, reliably
// parallelized at max_dop 4, several batches per partition.
constexpr const char* kParallelQuery =
    "SELECT a.id FROM AtomicPart a IN AtomicParts WHERE a.x > a.y;";

TEST_F(ChaosTest, TransientWorkerKillRecoversWithParity) {
  Planned p = Plan(kParallelQuery, /*max_dop=*/4);
  std::vector<std::string> expect = Reference(p);

  ExecOptions eo;
  eo.sample_limit = 1 << 22;
  eo.exec_faults.fail_worker = 1;
  eo.exec_faults.fail_after_batches = 1;
  eo.exec_faults.fail_attempts = 1;  // transient: the retry must run clean
  eo.recovery.enabled = true;
  eo.recovery.max_partition_attempts = 3;
  auto stats = ExecutePlan(*p.plan, &store(), &p.ctx, eo);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(SortedRows(stats->sample_rows), expect);
  EXPECT_GE(stats->faults_injected, 1);
  EXPECT_GE(stats->partitions_retried, 1);
  EXPECT_EQ(stats->partitions_speculated, 0);
}

TEST_F(ChaosTest, PermanentWorkerKillSurfacesTypedStatusThenEngineRecovers) {
  Planned p = Plan(kParallelQuery, /*max_dop=*/4);
  std::vector<std::string> expect = Reference(p);

  ExecOptions eo;
  eo.sample_limit = 1 << 22;
  eo.exec_faults.fail_worker = 0;
  eo.exec_faults.fail_after_batches = 1;
  eo.exec_faults.fail_attempts = 1000;  // permanent: every attempt dies
  eo.recovery.enabled = true;
  eo.recovery.max_partition_attempts = 2;
  auto stats = ExecutePlan(*p.plan, &store(), &p.ctx, eo);
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kWorkerFault)
      << stats.status();

  // The failure left no torn state behind: the same plan re-executes clean
  // (fresh options, no injector) with full parity.
  ExecOptions clean;
  clean.sample_limit = 1 << 22;
  auto again = ExecutePlan(*p.plan, &store(), &p.ctx, clean);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(SortedRows(again->sample_rows), expect);
}

TEST_F(ChaosTest, StragglerSpeculationDeliversParity) {
  Planned p = Plan(kParallelQuery, /*max_dop=*/4);
  std::vector<std::string> expect = Reference(p);

  // Worker 0's first attempt sleeps 25ms per batch; the consumer polls
  // every 2ms and speculates any partition later than 1% of the 1s
  // deadline (10ms). The rival attempt (attempt 1 >= slow_attempts) runs
  // at full speed and wins; first-result-wins suppresses the straggler.
  GovernorOptions gopts;
  gopts.deadline_ms = 20000.0;  // generous: the test is about speculation,
                                // not deadline trips (CI machines stall)
  QueryGovernor governor(gopts);
  ExecOptions eo;
  eo.sample_limit = 1 << 22;
  eo.governor = &governor;
  eo.exec_faults.slow_worker = 0;
  eo.exec_faults.slow_ms = 25.0;
  eo.exec_faults.slow_attempts = 1;
  eo.recovery.enabled = true;
  eo.recovery.max_partition_attempts = 3;
  eo.recovery.straggler_threshold = 0.0005;  // 10ms of the 20s deadline
  eo.recovery.check_interval_ms = 2.0;
  auto stats = ExecutePlan(*p.plan, &store(), &p.ctx, eo);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(SortedRows(stats->sample_rows), expect);
  EXPECT_GE(stats->partitions_speculated, 1);
}

TEST_F(ChaosTest, QueueStallIsBoundedAndCorrect) {
  Planned p = Plan(kParallelQuery, /*max_dop=*/4);
  std::vector<std::string> expect = Reference(p);

  ExecOptions eo;
  eo.sample_limit = 1 << 22;
  eo.exec_faults.stall_pushes = 4;
  eo.exec_faults.stall_ms = 2.0;
  auto stats = ExecutePlan(*p.plan, &store(), &p.ctx, eo);
  ASSERT_TRUE(stats.ok()) << stats.status();
  EXPECT_EQ(SortedRows(stats->sample_rows), expect);
}

TEST_F(ChaosTest, RecoveredRunsKeepBatchPoolSteadyState) {
  // The zero-alloc invariant under faults: a recovered (partition-retried)
  // execution returns every staged and in-flight arena; repeat runs of the
  // same deterministic fault are served from the pool with no fresh
  // allocations.
  Planned p = Plan(kParallelQuery, /*max_dop=*/4);
  ExecOptions eo;
  eo.sample_limit = 1 << 22;
  eo.exec_faults.fail_worker = 1;
  eo.exec_faults.fail_after_batches = 1;
  eo.exec_faults.fail_attempts = 1;
  eo.recovery.enabled = true;
  eo.recovery.max_partition_attempts = 3;
  auto run = [&] {
    auto stats = ExecutePlan(*p.plan, &store(), &p.ctx, eo);
    ASSERT_TRUE(stats.ok()) << stats.status();
  };
  run();
  run();
  Counter* misses =
      MetricsRegistry::Global().counter("oodb_batch_pool_misses_total");
  int64_t misses_before = misses->value();
  run();
  EXPECT_EQ(misses->value(), misses_before)
      << "a recovered execution allocated (leaked) a batch arena";
}

// --- randomized sweep: ExecutePlan level ---

TEST_P(ChaosTest, SweepFaultKindsAcrossEnginesAndDop) {
  Rng rng(0xc8a05 + static_cast<uint64_t>(GetParam()) * 7919);
  std::string text = RandomOo7Query(rng);
  SCOPED_TRACE(text);
  int max_dop = rng.Uniform(2) == 0 ? 1 : 4;
  int vectorize = static_cast<int>(rng.Uniform(2));
  bool transient = rng.Uniform(2) == 0;
  Planned p = Plan(text, max_dop);
  std::vector<std::string> expect = Reference(p);

  ExecOptions eo;
  eo.sample_limit = 1 << 22;
  eo.vectorize = vectorize;
  eo.exec_faults = RandomFaultPolicy(rng, max_dop, transient);
  eo.recovery.enabled = true;
  eo.recovery.max_partition_attempts = 3;
  auto stats = ExecutePlan(*p.plan, &store(), &p.ctx, eo);
  if (stats.ok()) {
    // Recovered (or unharmed): the result must be the fault-free multiset,
    // bit for bit — no duplicated rows from re-executed partitions, no
    // missing rows from suppressed attempts.
    EXPECT_EQ(SortedRows(stats->sample_rows), expect)
        << "plan:\n" << PrintPlan(*p.plan, p.ctx);
  } else {
    EXPECT_TRUE(IsCleanTypedFailure(stats.status().code()))
        << stats.status() << "\nplan:\n" << PrintPlan(*p.plan, p.ctx);
  }
}

TEST_P(ChaosTest, OrderedFaultSweepPreservesSequence) {
  // Ordered (and limited) deliveries under fault injection: the contract
  // tightens from multiset parity to *sequence* parity. Merge-Exchange
  // recovery re-runs a worker's whole sorted stream in place, so an
  // execution that reports OK must reproduce the fault-free row sequence
  // exactly — a merge that resumed mid-stream or dropped a stream's tail
  // would reorder or truncate visibly here.
  Rng rng(0x53c1 + static_cast<uint64_t>(GetParam()) * 12007);
  const char* fields[] = {"buildDate", "x", "y"};
  std::string key = fields[rng.Uniform(3)];
  bool desc = rng.Uniform(2) == 1;
  std::string text = "SELECT a." + key +
                     ", a.id FROM AtomicPart a IN AtomicParts "
                     "WHERE a.x >= " +
                     std::to_string(rng.UniformRange(0, 500)) + " ORDER BY a." +
                     key + (desc ? " DESC" : "");
  if (rng.Uniform(2) == 0) {
    text += " LIMIT " + std::to_string(1 + rng.Uniform(30));
  }
  text += ";";
  SCOPED_TRACE(text);
  Planned p = Plan(text, /*max_dop=*/4);

  // Fault-free baseline sequence from the very same plan.
  ExecOptions base;
  base.sample_limit = 1 << 22;
  auto clean = ExecutePlan(*p.plan, &store(), &p.ctx, base);
  ASSERT_TRUE(clean.ok()) << clean.status();
  std::vector<std::string> expect = RowSeq(clean->sample_rows);

  bool transient = rng.Uniform(2) == 0;
  ExecOptions eo;
  eo.sample_limit = 1 << 22;
  eo.vectorize = static_cast<int>(rng.Uniform(2));
  eo.exec_faults = RandomFaultPolicy(rng, /*dop=*/4, transient);
  eo.recovery.enabled = true;
  eo.recovery.max_partition_attempts = 3;
  auto stats = ExecutePlan(*p.plan, &store(), &p.ctx, eo);
  if (stats.ok()) {
    EXPECT_EQ(RowSeq(stats->sample_rows), expect)
        << "plan:\n" << PrintPlan(*p.plan, p.ctx);
  } else {
    EXPECT_TRUE(IsCleanTypedFailure(stats.status().code()))
        << stats.status() << "\nplan:\n" << PrintPlan(*p.plan, p.ctx);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest, ::testing::Range(0, 24));

// --- randomized sweep: Session retry ladder ---

class SessionChaosTest : public ::testing::TestWithParam<int> {
 protected:
  SessionChaosTest() : db_(MakePaperCatalog(0.02)) {}

  std::unique_ptr<Session> MakeSession(Session::Options opts) {
    auto s = std::make_unique<Session>(&db_.catalog, std::move(opts));
    GenOptions gen;
    gen.num_plants = 20;
    auto r = GeneratePaperData(db_, &s->store(), gen);
    EXPECT_TRUE(r.ok()) << r.status();
    return s;
  }

  static std::string RandomPaperQuery(Rng& rng) {
    switch (rng.Uniform(4)) {
      case 0:
        return "SELECT e.name FROM Employee e IN Employees WHERE e.age >= " +
               std::to_string(rng.UniformRange(20, 60)) + ";";
      case 1:
        return "SELECT c.name FROM City c IN Cities "
               "WHERE c.mayor.name == \"Joe\";";
      case 2:
        return "SELECT e.name, e.age FROM Employee e IN Employees "
               "WHERE e.age >= " +
               std::to_string(rng.UniformRange(20, 60)) +
               " ORDER BY e.age;";
      default:
        return "SELECT e.name, e.dept.name FROM Employee e IN Employees "
               "WHERE e.age >= " +
               std::to_string(rng.UniformRange(20, 60)) + ";";
    }
  }

  PaperDb db_;
};

TEST_P(SessionChaosTest, RetryLadderConvergesOrFailsTyped) {
  Rng rng(0x5e55 + static_cast<uint64_t>(GetParam()) * 104729);
  std::string text = RandomPaperQuery(rng);
  SCOPED_TRACE(text);
  bool transient = rng.Uniform(2) == 0;

  Session::Options opts;
  opts.optimizer.max_dop = rng.Uniform(2) == 0 ? 1 : 4;
  opts.exec.sample_limit = 1 << 22;
  opts.exec.vectorize = static_cast<int>(rng.Uniform(2));
  opts.exec.exec_faults =
      RandomFaultPolicy(rng, opts.optimizer.max_dop, transient);
  opts.exec.recovery.enabled = true;
  opts.exec.recovery.max_partition_attempts = 2;
  opts.retry.max_attempts = 4;
  opts.retry.backoff_s = 0.001;
  opts.governor.max_retries = 64;
  std::unique_ptr<Session> s = MakeSession(std::move(opts));

  auto r = s->Query(text);
  if (transient) {
    // A transient fault (attempt 0 only) must be survived — by partition
    // re-execution, or by the ladder's later attempts running with a
    // higher attempt number. Failure here means retry/recovery lost rows
    // or gave up on a curable fault.
    ASSERT_TRUE(r.ok()) << r.status();
  }
  if (r.ok()) {
    auto reference = EvaluateReference(*r->logical, &s->store(), r->ctx);
    ASSERT_TRUE(reference.ok()) << reference.status();
    std::vector<std::string> expect, got;
    for (const auto& row : reference->rows) {
      std::string k;
      for (const Value& v : row) k += v.ToString() + "|";
      expect.push_back(k);
    }
    for (const auto& row : r->rows()) {
      std::string k;
      for (const Value& v : row) k += v.ToString() + "|";
      got.push_back(k);
    }
    std::sort(expect.begin(), expect.end());
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expect);
    ASSERT_FALSE(r->attempts.empty());
    EXPECT_TRUE(r->attempts.back().status.ok());
  } else {
    EXPECT_TRUE(IsCleanTypedFailure(r.status().code())) << r.status();
  }
}

TEST_F(SessionChaosTest, LadderWalksToSerialUnderPersistentExchangeFault) {
  // A fault policy that kills Exchange workers on every attempt but never
  // fires on the serial path's root (fail_worker 1 only exists under an
  // Exchange): the ladder must walk vectorized -> row -> serial and
  // converge there with full parity.
  Session::Options opts;
  opts.optimizer.max_dop = 4;
  opts.exec.sample_limit = 1 << 22;
  opts.exec.exec_faults.fail_worker = 1;
  opts.exec.exec_faults.fail_after_batches = 1;
  opts.exec.exec_faults.fail_attempts = 1000;  // permanent at every attempt
  opts.retry.max_attempts = 4;
  opts.retry.backoff_s = 0.5;
  std::unique_ptr<Session> s = MakeSession(std::move(opts));

  // A query wide enough to parallelize; if the optimizer keeps it serial
  // the fault simply never fires and the first attempt succeeds — the
  // assertions below hold either way.
  auto r = s->Query(
      "SELECT e.name FROM Employee e IN Employees WHERE e.age >= 30;");
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_FALSE(r->attempts.empty());
  const ExecAttempt& last = r->attempts.back();
  EXPECT_TRUE(last.status.ok());
  if (r->attempts.size() > 1) {
    // The ladder actually walked: the winning rung ran without Exchange
    // workers and backoff accumulated in simulated time (0.5 + 1.0 + ...).
    EXPECT_TRUE(last.step == "serial" || last.step == "greedy") << last.step;
    EXPECT_GE(r->retry_backoff_s, 0.5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionChaosTest, ::testing::Range(0, 16));

// When OODB_CHAOS_SNAPSHOT names a path, dump the process-wide metrics
// registry to it. CI runs the whole binary in one process with this set
// (ctest discovery runs each test in its own process, where the registry
// holds only that test's counters), so the file it uploads aggregates the
// fault/retry/recovery counters of the entire chaos sweep.
TEST(ZChaosArtifact, WritesMetricsSnapshotWhenRequested) {
  const char* path = std::getenv("OODB_CHAOS_SNAPSHOT");
  if (path == nullptr) GTEST_SKIP() << "OODB_CHAOS_SNAPSHOT not set";
  std::ofstream out(path);
  ASSERT_TRUE(out.good()) << "cannot open " << path;
  out << MetricsRegistry::Global().TextSnapshot();
  out.close();
  EXPECT_TRUE(out.good());
}

}  // namespace
}  // namespace oodb
