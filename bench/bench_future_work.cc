// E16 — the paper's §6 "Conclusions and Future Work" items, implemented and
// evaluated: (1) refined selectivity estimation (min/max range statistics),
// (2) the Volcano pruning mechanisms the authors "have not evaluated yet",
// and (3) dynamic plan selection, the ObjectStore capability of §2 rebuilt
// on cost-based optimization.
#include "bench/bench_util.h"
#include "src/dynamic/dynamic_plans.h"

using namespace oodb;

int main() {
  PaperDb db = MakePaperCatalog();

  bench::Header("(1) Range selectivity from [min, max] statistics");
  {
    const char* narrow =
        "SELECT t.name FROM Task t IN Tasks WHERE t.time >= 595;";
    const char* wide =
        "SELECT t.name FROM Task t IN Tasks WHERE t.time >= 100;";
    for (const char* text : {narrow, wide}) {
      QueryContext ctx;
      ctx.catalog = &db.catalog;
      auto logical = ParseAndSimplify(text, &ctx);
      Optimizer opt(&db.catalog);
      auto r = opt.Optimize(**logical, &ctx);
      std::printf("%s\n%s  -> est. %.2f s\n\n", text,
                  PrintPlan(*r->plan, ctx).c_str(), r->cost.total());
    }
    std::printf("The optimizer switches between the (range-capable) index "
                "scan and the file scan\nas the estimated match fraction "
                "crosses the unclustered-fetch break-even point.\n");
  }

  bench::Header("(2) Branch-and-bound pruning: same plans, less search");
  {
    struct Case {
      const char* label;
      std::string text;
    };
    Case cases[] = {
        {"Query 1", kQuery1Text},
        {"Query 4", kQuery4Text},
        {"4-way join",
         "SELECT e1.name FROM Employee e1 IN Employees, Employee e2 IN "
         "Employees, Employee e3 IN Employees, Employee e4 IN Employees "
         "WHERE e1.name == e2.name && e2.age == e3.age && "
         "e3.salary == e4.salary;"},
    };
    std::printf("%-12s %18s %18s %12s\n", "query", "alts (exhaustive)",
                "alts (pruned)", "same cost?");
    for (const Case& c : cases) {
      auto run = [&](bool prune) {
        QueryContext ctx;
        ctx.catalog = &db.catalog;
        auto logical = ParseAndSimplify(c.text, &ctx);
        OptimizerOptions opts;
        opts.enable_pruning = prune;
        Optimizer opt(&db.catalog, opts);
        return *opt.Optimize(**logical, &ctx);
      };
      OptimizedQuery off = run(false);
      OptimizedQuery on = run(true);
      std::printf("%-12s %18d %18d %12s\n", c.label,
                  off.stats.phys_alternatives, on.stats.phys_alternatives,
                  on.cost.total() == off.cost.total() ? "yes" : "NO!");
    }
  }

  bench::Header("(3) Dynamic plan selection (ObjectStore's capability, "
                "cost-based)");
  {
    QueryContext ctx;
    auto logical = BuildPaperQuery(4, db, &ctx);
    auto compiled = DynamicPlan::Compile(**logical, &ctx, &db.catalog);
    if (!compiled.ok()) {
      std::fprintf(stderr, "%s\n", compiled.status().ToString().c_str());
      return 1;
    }
    std::printf("Query 4 compiled once: %zu variants over indexes {",
                compiled->variants().size());
    for (size_t i = 0; i < compiled->relevant_indexes().size(); ++i) {
      std::printf("%s%s", i ? ", " : "",
                  compiled->relevant_indexes()[i].c_str());
    }
    std::printf("}\n\n");
    for (const PlanVariant& v : compiled->variants()) {
      std::string label;
      for (const std::string& idx : v.available) label += idx + " ";
      if (label.empty()) label = "(no indexes)";
      std::printf("available: %-44s est. %8.2f s, root: %s\n", label.c_str(),
                  v.cost.total(), PhysOpKindName(v.plan->op.kind));
    }
    std::printf(
        "\nDropping an index at run time switches plans with no "
        "re-optimization — but unlike\nObjectStore's greedy version, every "
        "variant is the cost-based optimum for its\nconfiguration (compare "
        "Table 3's greedy row).\n");
  }
  return 0;
}
