# Empty dependencies file for example_company_queries.
# This may be replaced when dependencies are built.
