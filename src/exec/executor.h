// Plan executor: runs a physical plan against the simulated store and
// reports simulated time and I/O statistics, enabling end-to-end validation
// of the optimizer's anticipated costs.
#ifndef OODB_EXEC_EXECUTOR_H_
#define OODB_EXEC_EXECUTOR_H_

#include <memory>

#include "src/common/governor.h"
#include "src/exec/operators.h"
#include "src/trace/exec_profile.h"

namespace oodb {

struct ExecStats {
  int64_t rows = 0;
  double sim_io_s = 0.0;
  double sim_cpu_s = 0.0;
  int64_t pages_read = 0;
  int64_t seq_reads = 0;
  int64_t random_reads = 0;
  int64_t buffer_hits = 0;
  /// Rows per batch the pipeline ran with.
  int batch_size = 0;
  /// Degree of parallelism: the maximum Exchange dop in the plan (1 when
  /// the plan is serial).
  int dop = 1;
  /// Governor trip/charge counters (zero when the run was ungoverned).
  GovernorStats governor;
  /// Fault-tolerance counters for this execution: partitions re-executed
  /// after a retryable worker/storage fault, speculative straggler
  /// re-dispatches, and faults the exec-layer injector actually fired.
  int64_t partitions_retried = 0;
  int64_t partitions_speculated = 0;
  int64_t faults_injected = 0;

  double sim_total_s() const { return sim_io_s + sim_cpu_s; }

  /// Projected output rows (first `sample_limit` only).
  std::vector<std::vector<Value>> sample_rows;

  /// Per-operator runtime counters (EXPLAIN ANALYZE); null unless the run
  /// was analyzed (ExecOptions::analyze / ExecOptions::profile /
  /// OODB_FORCE_ANALYZE).
  std::shared_ptr<ExecProfile> profile;
};

struct ExecOptions {
  /// Reset buffer pool / clock before running (cold start).
  bool cold_start = true;
  /// How many projected rows to retain in the stats.
  int sample_limit = 10;
  /// Rows per execution batch. 0 means the store's timing knob
  /// (exec_batch_size); 1 degenerates to tuple-at-a-time iteration.
  int batch_size = 0;
  /// Per-query resource governor (non-owning; null = ungoverned). Checked
  /// at every operator Next() — i.e. per batch — and charged per output
  /// batch.
  QueryGovernor* governor = nullptr;
  /// Collect per-operator runtime counters (EXPLAIN ANALYZE). Off by
  /// default: the serial execution path is then bit-identical to the
  /// uninstrumented one. The environment variable OODB_FORCE_ANALYZE=1
  /// (read once per process) forces this on for every run — the CI lever
  /// proving instrumentation never changes results.
  bool analyze = false;
  /// Columnar vectorized execution: -1 inherits the OODB_VECTORIZE
  /// environment default (off unless OODB_VECTORIZE=1; read once per
  /// process), 0 forces the row-at-a-time batch engine, 1 forces columnar.
  /// Results and simulated costs are identical either way; vectorization
  /// changes wall-clock time only.
  int vectorize = -1;
  /// Top-k fast paths (bounded heap / streaming first-k cutoff). false
  /// switches TopKExec to the buffer-all / stable-sort / truncate oracle
  /// the parity suite diffs the fast paths against. Identical results;
  /// simulated charges follow the naive algorithm.
  bool topk = true;
  /// Caller-owned collector for analyzed runs (implies `analyze`). Useful
  /// when the caller needs the partial profile even if execution fails
  /// mid-plan (ExecutePlan returns only a Status then) — e.g. rendering a
  /// governor-tripped EXPLAIN ANALYZE. Null: ExecutePlan allocates one and
  /// returns it in ExecStats::profile.
  ExecProfile* profile = nullptr;
  /// Exec-layer fault injection (inert by default). When left inert, the
  /// OODB_EXEC_FAULTS environment spec (read once per process; see
  /// ParseExecFaultSpec for the key=value grammar) supplies a process-wide
  /// default — the chaos-CI lever.
  ExecFaultPolicy exec_faults;
  /// Base attempt number for fault-site identity: the Session retry loop
  /// passes its attempt index so "fail the first N attempts" policies make
  /// faults transient across query-level retries too.
  int fault_attempt = 0;
  /// Parallel-execution recovery (partition re-execution, straggler
  /// speculation). Disabled by default: Exchange then runs the streaming
  /// fast path bit-identical to the non-recoverable engine.
  ExecRecoveryOptions recovery;
  /// Degradation-ladder "serial" step: skip every Exchange in the plan and
  /// run its child unpartitioned on the calling thread.
  bool no_exchange = false;
  /// Mid-query re-planning trigger (0 = off): pipeline-breaker inputs fail
  /// with kPlanDrift when actual rows drift past the estimate by this
  /// factor (see ExecEnv::replan_drift_threshold). Armed by the Session's
  /// adaptive path; callers that arm it must handle kPlanDrift.
  double replan_drift_threshold = 0.0;
};

/// Executes `plan` to completion.
Result<ExecStats> ExecutePlan(const PlanNode& plan, ObjectStore* store,
                              QueryContext* ctx, ExecOptions options = {});

}  // namespace oodb

#endif  // OODB_EXEC_EXECUTOR_H_
