#include "src/workloads/oo7.h"

#include <cassert>

#include "src/common/rng.h"

namespace oodb {

namespace {

void Check(const Status& s) {
  assert(s.ok());
  (void)s;
}

FieldDef IntField(std::string name, int64_t distinct, int64_t min_value = 0,
                  int64_t max_value = 0) {
  FieldDef f;
  f.name = std::move(name);
  f.kind = FieldKind::kInt;
  f.distinct_values = distinct;
  f.min_value = min_value;
  f.max_value = max_value;
  return f;
}

FieldDef StrField(std::string name, int32_t size, int64_t distinct) {
  FieldDef f;
  f.name = std::move(name);
  f.kind = FieldKind::kString;
  f.avg_size = size;
  f.distinct_values = distinct;
  return f;
}

FieldDef RefField(std::string name, TypeId target) {
  FieldDef f;
  f.name = std::move(name);
  f.kind = FieldKind::kRef;
  f.target_type = target;
  return f;
}

FieldDef RefSetField(std::string name, TypeId target, double avg) {
  FieldDef f;
  f.name = std::move(name);
  f.kind = FieldKind::kRefSet;
  f.target_type = target;
  f.avg_set_card = avg;
  f.avg_size = static_cast<int32_t>(8 * avg);
  return f;
}

}  // namespace

std::unique_ptr<Oo7Db> MakeOo7Catalog(const Oo7Options& o) {
  auto db = std::make_unique<Oo7Db>();
  Schema& s = db->catalog.schema();

  db->atomic_part = s.AddType("AtomicPart", 60);
  db->composite_part = s.AddType("CompositePart", 200);
  db->document = s.AddType("Document", 2000);
  db->base_assembly = s.AddType("BaseAssembly", 100);
  db->complex_assembly = s.AddType("ComplexAssembly", 100);
  db->module = s.AddType("Module", 80);

  int64_t num_atomic =
      static_cast<int64_t>(o.num_composite_parts) * o.atomic_per_composite;
  TypeDef& atomic = s.mutable_type(db->atomic_part);
  db->atomic_id = atomic.AddField(IntField("id", num_atomic, 0, num_atomic - 1));
  db->atomic_x = atomic.AddField(IntField("x", 1000, 0, 999));
  db->atomic_y = atomic.AddField(IntField("y", 1000, 0, 999));
  db->atomic_build_date = atomic.AddField(
      IntField("buildDate", o.num_build_dates, 0, o.num_build_dates - 1));
  db->atomic_part_of = atomic.AddField(RefField("partOf", db->composite_part));

  TypeDef& comp = s.mutable_type(db->composite_part);
  db->comp_id = comp.AddField(
      IntField("id", o.num_composite_parts, 0, o.num_composite_parts - 1));
  db->comp_build_date = comp.AddField(
      IntField("buildDate", o.num_build_dates, 0, o.num_build_dates - 1));
  db->comp_root_part = comp.AddField(RefField("rootPart", db->atomic_part));
  db->comp_parts = comp.AddField(
      RefSetField("parts", db->atomic_part, o.atomic_per_composite));
  db->comp_doc = comp.AddField(RefField("documentation", db->document));

  TypeDef& doc = s.mutable_type(db->document);
  db->doc_title = doc.AddField(StrField("title", 32, o.num_doc_titles));
  db->doc_text = doc.AddField(StrField("text", 1900, 0));

  TypeDef& base = s.mutable_type(db->base_assembly);
  int64_t num_base = static_cast<int64_t>(o.num_modules) *
                     o.complex_per_module * o.base_per_complex;
  db->base_id = base.AddField(IntField("id", num_base, 0, num_base - 1));
  db->base_build_date = base.AddField(
      IntField("buildDate", o.num_build_dates, 0, o.num_build_dates - 1));
  db->base_components = base.AddField(
      RefSetField("components", db->composite_part, o.components_per_base));

  TypeDef& complex_asm = s.mutable_type(db->complex_assembly);
  int64_t num_complex =
      static_cast<int64_t>(o.num_modules) * o.complex_per_module;
  db->complex_id =
      complex_asm.AddField(IntField("id", num_complex, 0, num_complex - 1));
  db->complex_build_date = complex_asm.AddField(
      IntField("buildDate", o.num_build_dates, 0, o.num_build_dates - 1));
  db->complex_subassemblies = complex_asm.AddField(
      RefSetField("subAssemblies", db->base_assembly, o.base_per_complex));

  TypeDef& module = s.mutable_type(db->module);
  db->module_id =
      module.AddField(IntField("id", o.num_modules, 0, o.num_modules - 1));
  db->module_man = module.AddField(StrField("man", 16, 10));
  db->module_design_root =
      module.AddField(RefField("designRoot", db->complex_assembly));

  // Collections: extents everywhere; named sets for the query entry points.
  Check(db->catalog.AddExtent(db->atomic_part, num_atomic));
  Check(db->catalog.AddExtent(db->composite_part, o.num_composite_parts));
  Check(db->catalog.AddExtent(db->document, o.num_composite_parts));
  Check(db->catalog.AddExtent(db->base_assembly, num_base));
  Check(db->catalog.AddExtent(db->complex_assembly, num_complex));
  Check(db->catalog.AddExtent(db->module, o.num_modules));
  Check(db->catalog.AddSet("Modules", db->module, o.num_modules));
  Check(db->catalog.AddSet("BaseAssemblies", db->base_assembly, num_base));
  Check(db->catalog.AddSet("CompositeParts", db->composite_part,
                           o.num_composite_parts));
  Check(db->catalog.AddSet("AtomicParts", db->atomic_part, num_atomic));

  {
    IndexInfo idx;
    idx.name = kOo7IdxAtomicId;
    idx.collection = CollectionId::Set("AtomicParts", db->atomic_part);
    idx.path = {db->atomic_id};
    idx.distinct_keys = num_atomic;
    Check(db->catalog.AddIndex(idx));
  }
  {
    // Path index over composite -> documentation -> title.
    IndexInfo idx;
    idx.name = kOo7IdxCompositeDocTitle;
    idx.collection = CollectionId::Set("CompositeParts", db->composite_part);
    idx.path = {db->comp_doc, db->doc_title};
    idx.distinct_keys = o.num_doc_titles;
    Check(db->catalog.AddIndex(idx));
  }
  {
    IndexInfo idx;
    idx.name = kOo7IdxBaseBuildDate;
    idx.collection = CollectionId::Set("BaseAssemblies", db->base_assembly);
    idx.path = {db->base_build_date};
    idx.distinct_keys = o.num_build_dates;
    Check(db->catalog.AddIndex(idx));
  }
  return db;
}

Status PopulateOo7(Oo7Db* db, ObjectStore* store, const Oo7Options& o) {
  Rng rng(o.seed);

  // Documents + composite parts + their atomic parts.
  for (int c = 0; c < o.num_composite_parts; ++c) {
    Oid doc = store->Create(db->document);
    store->SetValue(doc, db->doc_title,
                    Value::Str("Doc" + std::to_string(c % o.num_doc_titles)));
    store->SetValue(doc, db->doc_text, Value::Str("text..."));
    db->documents.push_back(doc);

    Oid comp = store->Create(db->composite_part);
    store->SetValue(comp, db->comp_id, Value::Int(c));
    store->SetValue(
        comp, db->comp_build_date,
        Value::Int(static_cast<int64_t>(rng.Uniform(o.num_build_dates))));
    store->SetRef(comp, db->comp_doc, doc);
    OODB_RETURN_IF_ERROR(store->AddToSet("CompositeParts", comp));
    db->composite_parts.push_back(comp);

    Oid root = kInvalidOid;
    for (int a = 0; a < o.atomic_per_composite; ++a) {
      Oid atomic = store->Create(db->atomic_part);
      int64_t id = static_cast<int64_t>(c) * o.atomic_per_composite + a;
      store->SetValue(atomic, db->atomic_id, Value::Int(id));
      store->SetValue(atomic, db->atomic_x,
                      Value::Int(static_cast<int64_t>(rng.Uniform(1000))));
      store->SetValue(atomic, db->atomic_y,
                      Value::Int(static_cast<int64_t>(rng.Uniform(1000))));
      store->SetValue(
          atomic, db->atomic_build_date,
          Value::Int(static_cast<int64_t>(rng.Uniform(o.num_build_dates))));
      store->SetRef(atomic, db->atomic_part_of, comp);
      store->AddToRefSet(comp, db->comp_parts, atomic);
      OODB_RETURN_IF_ERROR(store->AddToSet("AtomicParts", atomic));
      db->atomic_parts.push_back(atomic);
      if (a == 0) root = atomic;
    }
    store->SetRef(comp, db->comp_root_part, root);
  }

  // Assembly hierarchy.
  for (int m = 0; m < o.num_modules; ++m) {
    Oid module = store->Create(db->module);
    store->SetValue(module, db->module_id, Value::Int(m));
    store->SetValue(module, db->module_man,
                    Value::Str("Man" + std::to_string(m % 10)));
    OODB_RETURN_IF_ERROR(store->AddToSet("Modules", module));
    db->modules.push_back(module);

    for (int c = 0; c < o.complex_per_module; ++c) {
      Oid complex_asm = store->Create(db->complex_assembly);
      store->SetValue(complex_asm, db->complex_id,
                      Value::Int(static_cast<int64_t>(m) * o.complex_per_module + c));
      store->SetValue(
          complex_asm, db->complex_build_date,
          Value::Int(static_cast<int64_t>(rng.Uniform(o.num_build_dates))));
      db->complex_assemblies.push_back(complex_asm);
      if (c == 0) store->SetRef(module, db->module_design_root, complex_asm);

      for (int b = 0; b < o.base_per_complex; ++b) {
        Oid base = store->Create(db->base_assembly);
        int64_t id = (static_cast<int64_t>(m) * o.complex_per_module + c) *
                         o.base_per_complex + b;
        store->SetValue(base, db->base_id, Value::Int(id));
        store->SetValue(
            base, db->base_build_date,
            Value::Int(static_cast<int64_t>(rng.Uniform(o.num_build_dates))));
        for (int k = 0; k < o.components_per_base; ++k) {
          store->AddToRefSet(
              base, db->base_components,
              db->composite_parts[rng.Uniform(db->composite_parts.size())]);
        }
        store->AddToRefSet(complex_asm, db->complex_subassemblies, base);
        OODB_RETURN_IF_ERROR(store->AddToSet("BaseAssemblies", base));
        db->base_assemblies.push_back(base);
      }
    }
  }

  return store->BuildIndexes();
}

Result<Oo7Instance> MakeOo7(Oo7Options options) {
  Oo7Instance out;
  out.db = MakeOo7Catalog(options);
  out.store = std::make_unique<ObjectStore>(&out.db->catalog);
  OODB_RETURN_IF_ERROR(PopulateOo7(out.db.get(), out.store.get(), options));
  return out;
}

std::string Oo7QueryExactMatch(int64_t id) {
  return "SELECT a.x, a.y FROM AtomicPart a IN AtomicParts WHERE a.id == " +
         std::to_string(id) + ";";
}

std::string Oo7QueryByDocTitle(const std::string& title) {
  return "SELECT p.id FROM CompositePart p IN CompositeParts "
         "WHERE p.documentation.title == \"" + title + "\";";
}

}  // namespace oodb
