#include "src/query/zql_ast.h"

#include "src/common/strings.h"

namespace oodb {

ZqlExprPtr ZqlExpr::MakePath(std::vector<std::string> steps) {
  auto e = std::make_shared<ZqlExpr>();
  e->kind = Kind::kPath;
  e->path = std::move(steps);
  return e;
}

ZqlExprPtr ZqlExpr::MakePathDotted(const std::string& dotted) {
  return MakePath(Split(dotted, '.'));
}

ZqlExprPtr ZqlExpr::MakeLiteral(Value v) {
  auto e = std::make_shared<ZqlExpr>();
  e->kind = Kind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ZqlExprPtr ZqlExpr::MakeCmp(CmpOp op, ZqlExprPtr l, ZqlExprPtr r) {
  auto e = std::make_shared<ZqlExpr>();
  e->kind = Kind::kCmp;
  e->cmp = op;
  e->children = {std::move(l), std::move(r)};
  return e;
}

ZqlExprPtr ZqlExpr::MakeAnd(std::vector<ZqlExprPtr> children) {
  if (children.size() == 1) return children[0];
  auto e = std::make_shared<ZqlExpr>();
  e->kind = Kind::kAnd;
  e->children = std::move(children);
  return e;
}

ZqlExprPtr ZqlExpr::MakeOr(std::vector<ZqlExprPtr> children) {
  if (children.size() == 1) return children[0];
  auto e = std::make_shared<ZqlExpr>();
  e->kind = Kind::kOr;
  e->children = std::move(children);
  return e;
}

ZqlExprPtr ZqlExpr::MakeNot(ZqlExprPtr child) {
  auto e = std::make_shared<ZqlExpr>();
  e->kind = Kind::kNot;
  e->children = {std::move(child)};
  return e;
}

ZqlExprPtr ZqlExpr::MakeExists(ZqlQueryPtr subquery) {
  auto e = std::make_shared<ZqlExpr>();
  e->kind = Kind::kExists;
  e->subquery = std::move(subquery);
  return e;
}

std::string ZqlExpr::ToString() const {
  switch (kind) {
    case Kind::kPath:
      return Join(path, ".");
    case Kind::kLiteral:
      return literal.ToString();
    case Kind::kCmp:
      return children[0]->ToString() + " " + CmpOpName(cmp) + " " +
             children[1]->ToString();
    case Kind::kAnd: {
      std::vector<std::string> parts;
      for (const ZqlExprPtr& c : children) parts.push_back(c->ToString());
      return Join(parts, " && ");
    }
    case Kind::kOr: {
      std::vector<std::string> parts;
      for (const ZqlExprPtr& c : children) {
        parts.push_back("(" + c->ToString() + ")");
      }
      return Join(parts, " || ");
    }
    case Kind::kNot:
      return "!(" + children[0]->ToString() + ")";
    case Kind::kExists:
      return "EXISTS (" + subquery->ToString() + ")";
  }
  return "?";
}

std::string ZqlRange::ToString() const {
  std::string src = from_path ? Join(path, ".") : collection;
  return type_name + " " + var + " IN " + src;
}

std::string ZqlQuery::ToString() const {
  std::vector<std::string> sel, rng;
  for (const ZqlExprPtr& e : select) sel.push_back(e->ToString());
  for (const ZqlRange& r : from) rng.push_back(r.ToString());
  std::string out = "SELECT " + Join(sel, ", ") + " FROM " + Join(rng, ", ");
  if (where) out += " WHERE " + where->ToString();
  if (!order_by.empty()) {
    std::vector<std::string> keys;
    for (const ZqlOrderKey& k : order_by) {
      keys.push_back(k.path->ToString() + (k.desc ? " DESC" : ""));
    }
    out += " ORDER BY " + Join(keys, ", ");
  }
  if (limit > 0) out += " LIMIT " + std::to_string(limit);
  return out;
}

}  // namespace oodb
