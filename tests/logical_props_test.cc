#include <gtest/gtest.h>

#include "src/algebra/logical_props.h"
#include "src/catalog/paper_catalog.h"

namespace oodb {
namespace {

class LogicalPropsTest : public ::testing::Test {
 protected:
  LogicalPropsTest() : db_(MakePaperCatalog()) { ctx_.catalog = &db_.catalog; }

  LogicalProps Derive(const LogicalExprPtr& tree) {
    auto r = DeriveTreeProps(*tree, ctx_);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? *r : LogicalProps{};
  }

  PaperDb db_;
  QueryContext ctx_;
};

TEST_F(LogicalPropsTest, GetCardinalityFromCatalog) {
  BindingId c = ctx_.bindings.AddGet("c", db_.city);
  auto get = LogicalExpr::Make(
      LogicalOp::Get(CollectionId::Set("Cities", db_.city), c));
  LogicalProps p = Derive(get);
  EXPECT_DOUBLE_EQ(p.card, 10000);
  EXPECT_DOUBLE_EQ(p.tuple_bytes, 200);
  EXPECT_EQ(p.scope, BindingSet::Of(c));
}

TEST_F(LogicalPropsTest, SelectAppliesDefaultSelectivity) {
  BindingId c = ctx_.bindings.AddGet("c", db_.city);
  auto tree = LogicalExpr::Make(
      LogicalOp::Select(ScalarExpr::AttrEqInt(c, db_.city_population, 5)),
      {LogicalExpr::Make(LogicalOp::Get(CollectionId::Set("Cities", db_.city), c))});
  // No index on population -> paper's naive 10%.
  EXPECT_DOUBLE_EQ(Derive(tree).card, 1000);
}

TEST_F(LogicalPropsTest, SelectUsesIndexAssistedSelectivity) {
  BindingId c = ctx_.bindings.AddGet("c", db_.city);
  BindingId m = ctx_.bindings.AddMat("c.mayor", db_.person, c, db_.city_mayor);
  auto tree = LogicalExpr::Make(
      LogicalOp::Select(ScalarExpr::AttrEqStr(m, db_.person_name, "Joe")),
      {LogicalExpr::Make(
          LogicalOp::Mat(c, db_.city_mayor, m),
          {LogicalExpr::Make(
              LogicalOp::Get(CollectionId::Set("Cities", db_.city), c))})});
  // Path index on Cities(mayor.name): 10000 / 5000 = 2 — the paper's
  // "only 2 cities have mayors named Joe".
  EXPECT_DOUBLE_EQ(Derive(tree).card, 2);
}

TEST_F(LogicalPropsTest, MatKeepsCardAddsBytes) {
  BindingId c = ctx_.bindings.AddGet("c", db_.city);
  BindingId m = ctx_.bindings.AddMat("c.mayor", db_.person, c, db_.city_mayor);
  auto tree = LogicalExpr::Make(
      LogicalOp::Mat(c, db_.city_mayor, m),
      {LogicalExpr::Make(LogicalOp::Get(CollectionId::Set("Cities", db_.city), c))});
  LogicalProps p = Derive(tree);
  EXPECT_DOUBLE_EQ(p.card, 10000);
  EXPECT_DOUBLE_EQ(p.tuple_bytes, 300);  // 200 city + 100 person
}

TEST_F(LogicalPropsTest, UnnestMultipliesByFanout) {
  BindingId t = ctx_.bindings.AddGet("t", db_.task);
  BindingId r =
      ctx_.bindings.AddUnnest("r", db_.employee, t, db_.task_team_members);
  auto tree = LogicalExpr::Make(
      LogicalOp::Unnest(t, db_.task_team_members, r),
      {LogicalExpr::Make(LogicalOp::Get(CollectionId::Set("Tasks", db_.task), t))});
  EXPECT_DOUBLE_EQ(Derive(tree).card, 60000);  // 12000 tasks x 5 members
}

TEST_F(LogicalPropsTest, RefJoinCardMatchesMatCard) {
  // Mat e.dept over Employees and its Join rewrite agree on cardinality.
  BindingId e = ctx_.bindings.AddGet("e", db_.employee);
  BindingId d = ctx_.bindings.AddMat("e.dept", db_.department, e, db_.emp_dept);
  auto employees = LogicalExpr::Make(
      LogicalOp::Get(CollectionId::Set("Employees", db_.employee), e));
  auto mat = LogicalExpr::Make(LogicalOp::Mat(e, db_.emp_dept, d), {employees});
  auto join = LogicalExpr::Make(
      LogicalOp::Join(ScalarExpr::RefEq(e, db_.emp_dept, d)),
      {employees,
       LogicalExpr::Make(
           LogicalOp::Get(CollectionId::Extent(db_.department), d))});
  EXPECT_DOUBLE_EQ(Derive(mat).card, Derive(join).card);
  EXPECT_DOUBLE_EQ(Derive(join).card, 50000);
}

TEST_F(LogicalPropsTest, ProjectBytesFromEmittedFields) {
  BindingId c = ctx_.bindings.AddGet("c", db_.city);
  auto tree = LogicalExpr::Make(
      LogicalOp::Project({ScalarExpr::Attr(c, db_.city_name)}),
      {LogicalExpr::Make(LogicalOp::Get(CollectionId::Set("Cities", db_.city), c))});
  LogicalProps p = Derive(tree);
  EXPECT_DOUBLE_EQ(p.card, 10000);
  EXPECT_DOUBLE_EQ(p.tuple_bytes, 24);  // city_name avg_size
  EXPECT_EQ(p.scope, BindingSet::Of(c));
}

TEST_F(LogicalPropsTest, SetOps) {
  BindingId c = ctx_.bindings.AddGet("c", db_.city);
  auto cities = LogicalExpr::Make(
      LogicalOp::Get(CollectionId::Set("Cities", db_.city), c));
  auto dup = LogicalExpr::Make(
      LogicalOp::Get(CollectionId::Set("Cities", db_.city), c));
  auto u = LogicalExpr::Make(LogicalOp::SetOp(LogicalOpKind::kUnion),
                             {cities, dup});
  EXPECT_DOUBLE_EQ(Derive(u).card, 20000);
  auto i = LogicalExpr::Make(LogicalOp::SetOp(LogicalOpKind::kIntersect),
                             {cities, dup});
  EXPECT_DOUBLE_EQ(Derive(i).card, 5000);
  auto d = LogicalExpr::Make(LogicalOp::SetOp(LogicalOpKind::kDifference),
                             {cities, dup});
  EXPECT_DOUBLE_EQ(Derive(d).card, 5000);
}

TEST_F(LogicalPropsTest, RangePredicateSelectivity) {
  // emp.age has [20, 70] range statistics: age >= 32 keeps 38/50.
  BindingId e = ctx_.bindings.AddGet("e", db_.employee);
  auto tree = LogicalExpr::Make(
      LogicalOp::Select(ScalarExpr::AttrCmpInt(e, db_.emp_age, CmpOp::kGe, 32)),
      {LogicalExpr::Make(
          LogicalOp::Get(CollectionId::Set("Employees", db_.employee), e))});
  EXPECT_NEAR(Derive(tree).card, 50000.0 * 38.0 / 50.0, 1.0);
}

}  // namespace
}  // namespace oodb
