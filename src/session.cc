#include "src/session.h"

#include <algorithm>

#include "src/baseline/greedy.h"
#include "src/common/metrics.h"
#include "src/common/strings.h"
#include "src/query/fingerprint.h"
#include "src/trace/exec_profile.h"
#include "src/verify/verify.h"

namespace oodb {

namespace {

/// Session counters, resolved once (registered metrics are never
/// deallocated, so the cached pointers outlive every session).
struct SessionMetrics {
  Counter* prepares;
  Counter* queries;
  Counter* analyzes;
  Counter* degraded;
  Counter* cache_served;
  // Fault-tolerance observability: query-level execution retries and the
  // degradation-ladder steps actually executed.
  Counter* exec_retries;
  Counter* ladder_row;
  Counter* ladder_serial;
  Counter* ladder_greedy;
  // Drift-adaptation observability: mid-query re-optimizations and
  // drift-triggered automatic ANALYZE runs (drift-based cache evictions are
  // counted by the plan cache itself).
  Counter* replans;
  Counter* auto_analyzes;
  // Per-StatusCode terminal failures of executed statements
  // (Query/ExplainAnalyze after retry): the typed-error budget the chaos
  // suite audits.
  Counter* err_storage_fault;
  Counter* err_worker_fault;
  Counter* err_deadline;
  Counter* err_budget;
  Counter* err_cancelled;
  Counter* err_other;

  static const SessionMetrics& Get() {
    static const SessionMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      SessionMetrics m;
      m.prepares = r.counter("oodb_session_prepares_total",
                             "Statements parsed and optimized.");
      m.queries = r.counter("oodb_session_queries_total",
                            "Statements executed to completion.");
      m.analyzes = r.counter("oodb_session_analyze_total",
                             "EXPLAIN ANALYZE renderings.");
      m.degraded = r.counter(
          "oodb_session_degraded_total",
          "Governor-tripped searches answered by the greedy baseline.");
      m.cache_served = r.counter("oodb_session_plan_cache_served_total",
                                 "Prepares answered from the plan cache.");
      m.exec_retries = r.counter("oodb_session_exec_retries_total",
                                 "Query-level execution re-attempts.");
      m.ladder_row = r.counter(
          "oodb_session_ladder_row_total",
          "Degradation-ladder attempts executed on the row engine.");
      m.ladder_serial = r.counter(
          "oodb_session_ladder_serial_total",
          "Degradation-ladder attempts executed serially (no Exchange).");
      m.ladder_greedy = r.counter(
          "oodb_session_ladder_greedy_total",
          "Degradation-ladder attempts executed on a greedy re-plan.");
      m.replans = r.counter(
          "oodb_session_replans_total",
          "Mid-query re-optimizations from observed cardinality drift.");
      m.auto_analyzes = r.counter(
          "oodb_session_auto_analyze_total",
          "Drift-triggered automatic ANALYZE runs.");
      m.err_storage_fault =
          r.counter("oodb_session_error_storage_fault_total",
                    "Statements failed with kStorageFault after retry.");
      m.err_worker_fault =
          r.counter("oodb_session_error_worker_fault_total",
                    "Statements failed with kWorkerFault after retry.");
      m.err_deadline =
          r.counter("oodb_session_error_deadline_exceeded_total",
                    "Statements failed with kDeadlineExceeded.");
      m.err_budget =
          r.counter("oodb_session_error_budget_exhausted_total",
                    "Statements failed with kBudgetExhausted.");
      m.err_cancelled = r.counter("oodb_session_error_cancelled_total",
                                  "Statements failed with kCancelled.");
      m.err_other = r.counter(
          "oodb_session_error_other_total",
          "Statements failed with any other non-OK status.");
      return m;
    }();
    return m;
  }
};

/// Counts a statement's terminal failure under its StatusCode bucket.
void CountError(StatusCode code) {
  const SessionMetrics& m = SessionMetrics::Get();
  switch (code) {
    case StatusCode::kStorageFault: m.err_storage_fault->Increment(); break;
    case StatusCode::kWorkerFault: m.err_worker_fault->Increment(); break;
    case StatusCode::kDeadlineExceeded: m.err_deadline->Increment(); break;
    case StatusCode::kBudgetExhausted: m.err_budget->Increment(); break;
    case StatusCode::kCancelled: m.err_cancelled->Increment(); break;
    default: m.err_other->Increment(); break;
  }
}

/// True when a governor trip during *planning* may be answered with the
/// greedy baseline instead of an error: the search ran out of budget or
/// time, but the query itself is fine. Cancellation and storage faults are
/// never degraded — the caller asked to stop, or the data is unreadable.
bool DegradableTrip(StatusCode code) {
  return code == StatusCode::kBudgetExhausted ||
         code == StatusCode::kDeadlineExceeded;
}

/// Renders the execution attempt trail — one line per attempt with its
/// ladder step, outcome, fault/recovery counters, and the simulated backoff
/// charged before the next attempt. Empty on the untried clean path (a
/// single OK attempt), so ANALYZE output is unchanged unless something
/// actually went wrong.
std::string RenderRetryTrail(const std::vector<ExecAttempt>& attempts) {
  if (attempts.size() <= 1 &&
      (attempts.empty() || attempts[0].status.ok())) {
    return "";
  }
  std::string out;
  for (const ExecAttempt& a : attempts) {
    out += "retry: attempt " + std::to_string(a.attempt) + " step=" + a.step;
    if (a.replanned) out += " replan=feedback";
    out += " status=" + (a.status.ok() ? "OK" : a.status.ToString());
    if (a.faults_injected > 0) {
      out += " faults=" + std::to_string(a.faults_injected);
    }
    if (a.partitions_retried > 0) {
      out += " partitions_retried=" + std::to_string(a.partitions_retried);
    }
    if (a.partitions_speculated > 0) {
      out +=
          " partitions_speculated=" + std::to_string(a.partitions_speculated);
    }
    if (a.backoff_s > 0.0) {
      out += " backoff=" + FormatDouble(a.backoff_s, 6) + "s";
    }
    out += "\n";
  }
  return out;
}

/// Maximum Exchange degree of parallelism anywhere in the plan (1 = serial).
int PlanMaxDop(const PlanNode& node) {
  int dop = node.op.kind == PhysOpKind::kExchange ? node.op.dop : 1;
  for (const PlanNodePtr& c : node.children) {
    dop = std::max(dop, PlanMaxDop(*c));
  }
  return dop;
}

}  // namespace

PlanCache* Session::plan_cache() {
  if (options_.plan_cache != nullptr) return options_.plan_cache.get();
  if (options_.optimizer.plan_cache_capacity == 0) return nullptr;
  if (own_cache_ == nullptr) {
    own_cache_ =
        std::make_shared<PlanCache>(options_.optimizer.plan_cache_capacity);
  }
  return own_cache_.get();
}

Result<OptimizedQuery> Session::RunOptimizer(const LogicalExpr& input,
                                             QueryContext* ctx,
                                             const PhysProps& required) {
  OptimizerOptions opts = options_.optimizer;
  opts.governor = governor_.get();
  Optimizer optimizer(catalog_, std::move(opts));
  Result<OptimizedQuery> optimized = optimizer.Optimize(input, ctx, required);
  if (optimized.ok() || governor_ == nullptr) return optimized;
  const Status& err = optimized.status();
  if (!DegradableTrip(err.code()) || !options_.governor.degrade_to_greedy) {
    return optimized;
  }
  // Graceful degradation: answer with the greedy baseline plan. If even the
  // greedy planner cannot handle the query (explicit joins, its own error),
  // surface the original governor trip, not the fallback's complaint.
  GreedyOptimizer greedy(catalog_, options_.optimizer.cost);
  Result<OptimizedQuery> fallback = greedy.Optimize(input, ctx, required);
  if (!fallback.ok()) return err;
  fallback->stats.degraded = true;
  fallback->stats.degrade_reason = err.message();
  fallback->stats.governor = governor_->stats();
  if (options_.optimizer.verify_plans && fallback->plan != nullptr) {
    // The greedy path bypasses the optimizer's verification hook; hold its
    // plan to the same standard (this is exactly how the greedy planner's
    // projection-scope bug was found).
    fallback->stats.verified = true;
    fallback->stats.verify_error =
        VerifyPlanReport(*fallback->plan, *ctx).ToString();
  }
  // The tripped governor is sticky; re-arm a fresh one (fresh deadline and
  // budgets) so the degraded plan gets a real chance to execute.
  governor_ = std::make_unique<QueryGovernor>(options_.governor);
  return fallback;
}

Result<SessionResult> Session::Prepare(const std::string& zql) {
  SessionMetrics::Get().prepares->Increment();
  if (options_.governor.enabled()) {
    // Arm a fresh governor per query; the deadline spans optimization and,
    // when called from Query, execution of this statement.
    governor_ = std::make_unique<QueryGovernor>(options_.governor);
  } else {
    governor_.reset();
  }

  SessionResult out;
  out.ctx.catalog = catalog_;
  SortSpec order;
  int64_t limit = 0;
  OODB_ASSIGN_OR_RETURN(out.logical,
                        ParseAndSimplify(zql, &out.ctx, &order, &limit));
  PhysProps required;
  required.sort = order;
  required.limit = limit;
  out.required = required;

  PlanCache* cache = plan_cache();
  if (cache == nullptr) {
    // Cache off: exactly the seed optimization path.
    OODB_ASSIGN_OR_RETURN(out.optimized,
                          RunOptimizer(*out.logical, &out.ctx, required));
    if (out.optimized.stats.degraded) {
      SessionMetrics::Get().degraded->Increment();
    }
    return out;
  }

  // Snapshot the version *before* optimizing: if statistics move while we
  // search, the entry is stored under the old version and can never be
  // served after the bump.
  const uint64_t version = catalog_->stats_version();
  QueryFingerprint qfp =
      FingerprintQuery(*out.logical, out.ctx,
                       options_.optimizer.plan_cache_parameterize);
  // Key by the LIMIT's octave bucket, not the exact k: limits within a
  // factor of two share a plan shape (TopK heap size is a runtime
  // parameter), so `LIMIT 10` and `LIMIT 12` hit the same entry and the
  // cached plan is rebound to the exact k below — mirroring how comparison
  // literals are parameterized by selectivity bucket.
  PhysProps cache_props = required;
  cache_props.limit = LimitBucket(limit);
  PlanCacheKey key{qfp.fp, cache_props,
                   HashOptimizerOptions(options_.optimizer)};
  // Remember the key: Query records post-execution drift against the entry
  // (drift-based eviction needs to find it again).
  out.cache_key = key;
  out.cache_keyed = true;

  if (std::optional<OptimizedQuery> hit = cache->Lookup(
          key, version, *out.logical, out.ctx.bindings, qfp.literals)) {
    out.optimized = std::move(*hit);
    out.optimized.plan = RebindPlanLimit(out.optimized.plan, limit);
    out.optimized.stats.plan_cached = true;
  } else {
    OODB_ASSIGN_OR_RETURN(out.optimized,
                          RunOptimizer(*out.logical, &out.ctx, required));
    if (!out.optimized.stats.degraded &&
        out.optimized.stats.verify_error.empty()) {
      // Degraded plans are a stopgap for *this* statement's exhausted
      // budget; caching one would keep serving the inferior plan to
      // fully-budgeted callers. Plans the verifier flagged are never
      // cached either: a corrupt plan served from cache would outlive the
      // statement that exposed the bug.
      auto entry = std::make_shared<CachedPlan>();
      entry->plan = out.optimized.plan;
      entry->cost = out.optimized.cost;
      entry->stats = out.optimized.stats;
      entry->stats_version = version;
      entry->tree = out.logical;
      entry->bindings = out.ctx.bindings;
      entry->literals = std::move(qfp.literals);
      cache->Insert(key, std::move(entry));
    }
  }
  PlanCacheStats cs = cache->stats();
  out.optimized.stats.cache_hits = cs.hits;
  out.optimized.stats.cache_misses = cs.misses;
  out.optimized.stats.cache_evictions = cs.evictions;
  out.optimized.stats.cache_invalidations = cs.invalidations;
  if (out.optimized.stats.plan_cached) {
    SessionMetrics::Get().cache_served->Increment();
  }
  if (out.optimized.stats.degraded) {
    SessionMetrics::Get().degraded->Increment();
  }
  return out;
}

Result<ExecStats> Session::ExecuteWithRetry(SessionResult* r,
                                            ExecProfile* profile) {
  const RetryPolicy& retry = options_.retry;
  const int max_attempts = std::max(1, retry.max_attempts);
  double total_backoff = 0.0;
  Status last = Status::OK();
  // Mid-query re-planning shares this loop with the fault-retry ladder but
  // keeps separate books: `attempt` indexes ladder rungs (fault retries
  // only), `attempt_no` numbers the rendered trail, and a re-plan consumes
  // a replan-budget slot instead of a ladder rung — a drift abort on
  // attempt 0 re-executes at step 0, still vectorized.
  bool replan_armed = options_.adaptive.replan_enabled();
  bool next_replanned = false;
  int attempt_no = 0;
  for (int attempt = 0; attempt < max_attempts; ++attempt_no) {
    ExecOptions opts = options_.exec;
    opts.governor = governor_.get();  // same governor: deadline spans both
    opts.fault_attempt = attempt;
    if (replan_armed && r->replans < options_.adaptive.max_replans) {
      opts.replan_drift_threshold = options_.adaptive.replan_drift_threshold;
    } else {
      // Budget spent (or re-plan machinery failed): the plan must run to
      // completion, so the breaker checks are disarmed.
      opts.replan_drift_threshold = 0.0;
    }
    // Ladder step for this attempt. Step 0 is the configured engine; each
    // retry steps down one rung (row -> serial -> greedy), never back up.
    const int step = retry.degrade ? std::min(attempt, 3) : 0;
    ExecAttempt rec;
    rec.attempt = attempt_no;
    rec.replanned = next_replanned;
    const PlanNode* plan = r->optimized.plan.get();
    switch (step) {
      case 0:
        rec.step = opts.vectorize != 0 ? "vectorized" : "row";
        break;
      case 1:
        opts.vectorize = 0;
        rec.step = "row";
        SessionMetrics::Get().ladder_row->Increment();
        break;
      case 2:
        opts.vectorize = 0;
        opts.no_exchange = true;
        rec.step = "serial";
        SessionMetrics::Get().ladder_serial->Increment();
        break;
      default: {
        opts.vectorize = 0;
        opts.no_exchange = true;
        // Last rung: abandon the cost-based plan entirely and run the
        // greedy baseline's plan — a structurally different tree, in case
        // the failure tracks a plan shape rather than an engine mode. The
        // successful greedy attempt replaces r->optimized so the rendered
        // plan is the one that produced the rows; failure to even re-plan
        // (e.g. explicit joins) re-runs the serial rung instead.
        GreedyOptimizer greedy(catalog_, options_.optimizer.cost);
        Result<OptimizedQuery> fallback =
            greedy.Optimize(*r->logical, &r->ctx, r->required);
        if (fallback.ok()) {
          fallback->stats.degraded = true;
          fallback->stats.degrade_reason =
              "exec retry ladder: " + last.ToString();
          r->optimized = std::move(*fallback);
          plan = r->optimized.plan.get();
          rec.step = "greedy";
          SessionMetrics::Get().ladder_greedy->Increment();
        } else {
          rec.step = "serial";
          SessionMetrics::Get().ladder_serial->Increment();
        }
        break;
      }
    }
    next_replanned = false;
    ExecProfile attempt_profile;
    // The attempt profile also feeds mid-query re-planning: when the
    // breaker checks are armed, feedback extraction needs actuals even if
    // the caller asked for no profile.
    if (profile != nullptr || opts.replan_drift_threshold > 0.0) {
      opts.profile = &attempt_profile;
    }

    Result<ExecStats> stats = ExecutePlan(*plan, &store_, &r->ctx, opts);
    if (!stats.ok() && stats.status().code() == StatusCode::kPlanDrift) {
      // A pipeline breaker saw its input drift past the threshold and
      // aborted the unexecuted suffix. Extract observed cardinalities from
      // the partial profile and re-enter the memo; the corrected plan
      // re-executes at the *same* ladder step (drift is a planning problem,
      // not an engine fault). The aborted attempt's profile is dropped
      // after extraction, so operator accounting stays exactly-once.
      rec.status = stats.status();
      rec.sim_s = store_.clock().io_s + store_.clock().cpu_s;
      rec.partitions_retried = attempt_profile.partitions_retried();
      rec.partitions_speculated = attempt_profile.partitions_speculated();
      Status replanned = ReplanWithFeedback(r, attempt_profile);
      next_replanned = replanned.ok();
      if (replanned.ok()) {
        SessionMetrics::Get().replans->Increment();
      } else {
        // No usable feedback (or the re-optimization itself failed): disarm
        // the breaker checks and re-run the current plan to completion
        // rather than failing a healthy query.
        replan_armed = false;
      }
      // The re-dispatch is a governed resource, same as a fault retry.
      if (governor_ != nullptr) {
        Status charged = governor_->ChargeRetry();
        if (!charged.ok()) {
          r->attempts.push_back(std::move(rec));
          r->retry_backoff_s = total_backoff;
          if (profile != nullptr) profile->MergeFrom(attempt_profile);
          return charged;
        }
      }
      r->attempts.push_back(std::move(rec));
      continue;
    }
    const bool terminal = stats.ok() ||
                          !IsRetryableExecFault(stats.status().code()) ||
                          attempt + 1 >= max_attempts;
    rec.status = stats.ok() ? Status::OK() : stats.status();
    if (stats.ok()) {
      rec.faults_injected = stats->faults_injected;
      rec.partitions_retried = stats->partitions_retried;
      rec.partitions_speculated = stats->partitions_speculated;
      rec.sim_s = stats->sim_total_s();
    } else {
      // ExecutePlan returns only a Status on failure; the attempt profile
      // still carries what the Exchange recovery path observed.
      rec.partitions_retried = attempt_profile.partitions_retried();
      rec.partitions_speculated = attempt_profile.partitions_speculated();
      rec.sim_s = store_.clock().io_s + store_.clock().cpu_s;
    }
    if (terminal) {
      r->attempts.push_back(std::move(rec));
      r->retry_backoff_s = total_backoff;
      // Only the final attempt's profile merges: earlier attempts ran the
      // same plan nodes and would double-count every operator.
      if (profile != nullptr) profile->MergeFrom(attempt_profile);
      return stats;
    }
    last = stats.status();
    // Retry is a governed resource: charge it before re-dispatching, and
    // let a tripped retry budget end the ladder with its typed Status.
    if (governor_ != nullptr) {
      Status charged = governor_->ChargeRetry();
      if (!charged.ok()) {
        r->attempts.push_back(std::move(rec));
        r->retry_backoff_s = total_backoff;
        if (profile != nullptr) profile->MergeFrom(attempt_profile);
        return charged;
      }
    }
    // Exponential backoff in simulated time. cold_start resets the
    // simulated clock per attempt, so backoff accumulates on its own
    // tally instead of the clock.
    double backoff =
        retry.backoff_s * static_cast<double>(int64_t{1} << std::min(attempt, 30));
    rec.backoff_s = backoff;
    total_backoff += backoff;
    r->attempts.push_back(std::move(rec));
    SessionMetrics::Get().exec_retries->Increment();
    ++attempt;  // fault retries consume ladder rungs; re-plans do not
  }
  return last;  // unreachable: the loop exits through `terminal`
}

Status Session::ReplanWithFeedback(SessionResult* r,
                                   const ExecProfile& profile) {
  auto fb = std::make_shared<CardFeedback>(
      ExtractCardFeedback(*r->optimized.plan, profile, r->ctx, store_));
  if (fb->empty()) {
    return Status::Internal("replan: no usable cardinality feedback");
  }
  // The feedback must outlive the re-optimized plan (the estimator reads it
  // through ctx.feedback during the search only, but a later replan of the
  // same statement extends it), so the result owns it.
  r->feedback = fb;
  r->ctx.feedback = fb.get();
  Result<OptimizedQuery> re =
      RunOptimizer(*r->logical, &r->ctx, r->required);
  if (!re.ok()) return re.status();
  // Feedback-costed plans are query-local: RunOptimizer never touches the
  // plan cache, so the corrected plan cannot leak to other statements.
  r->optimized = std::move(*re);
  r->optimized.stats.replanned = true;
  ++r->replans;
  return Status::OK();
}

void Session::MaybeAdapt(SessionResult* r, const ExecProfile& profile) {
  const AdaptiveOptions& a = options_.adaptive;
  if (!a.feedback_enabled()) return;
  const double drift = MaxDriftRatio(*r->optimized.plan, profile);
  r->observed_drift = drift;
  ++executed_since_analyze_;
  if (PlanCache* cache = plan_cache();
      cache != nullptr && r->cache_keyed) {
    r->drift_evicted =
        cache->RecordDrift(r->cache_key, drift, a.evict_drift_threshold);
  }
  if (a.analyze_drift_threshold > 0.0 && drift > a.analyze_drift_threshold &&
      executed_since_analyze_ >= std::max(1, a.analyze_cooldown)) {
    // Statistics are provably stale enough to mis-plan; refresh them now,
    // on the triggering statement's budget. The version bump invalidates
    // every cached plan costed under the stale statistics on next contact.
    AnalyzeOptions opts = a.analyze;
    opts.governor = governor_.get();
    if (AnalyzeStore(store_, catalog_, opts).ok()) {
      executed_since_analyze_ = 0;
      r->auto_analyzed = true;
      SessionMetrics::Get().auto_analyzes->Increment();
    }
    // A governor-tripped ANALYZE simply skips: the refresh retries on a
    // later statement once the cooldown re-opens.
  }
}

Result<SessionResult> Session::Query(const std::string& zql) {
  Result<SessionResult> prepared = Prepare(zql);
  if (!prepared.ok()) {
    CountError(prepared.status().code());
    return prepared.status();
  }
  SessionResult out = std::move(*prepared);
  SessionMetrics::Get().queries->Increment();
  // Post-execution drift recording / auto-ANALYZE needs per-operator
  // actuals; collect them only when that adaptive layer is armed so the
  // plain path stays uninstrumented.
  ExecProfile profile;
  const bool adapt = options_.adaptive.feedback_enabled();
  Result<ExecStats> stats = ExecuteWithRetry(&out, adapt ? &profile : nullptr);
  if (!stats.ok()) {
    CountError(stats.status().code());
    return stats.status();
  }
  out.exec = std::move(*stats);
  if (adapt) MaybeAdapt(&out, profile);
  return out;
}

std::string Session::ExplainHeader(const SessionResult& r) {
  std::string out;
  const SearchStats& st = r.optimized.stats;
  if (st.degraded) {
    out += "plan: degraded(greedy, reason=" + st.degrade_reason + ")\n";
  }
  if (st.replanned) out += "plan: replanned(feedback)\n";
  if (st.plan_cached) out += "plan: cached\n";
  if (!st.verify_error.empty()) {
    out += "verify: FAILED\n" + st.verify_error + "\n";
  }
  if (plan_cache() != nullptr) {
    out += "plan cache: hits=" + std::to_string(st.cache_hits) +
           " misses=" + std::to_string(st.cache_misses) +
           " evictions=" + std::to_string(st.cache_evictions) +
           " invalidations=" + std::to_string(st.cache_invalidations) + "\n";
  }
  if (governor_ != nullptr) {
    const GovernorStats& g = st.governor;
    out += "governor: trips=" + std::to_string(g.trips()) +
           " deadline=" + std::to_string(g.deadline_trips) +
           " budget=" + std::to_string(g.budget_trips) +
           " cancel=" + std::to_string(g.cancel_trips) +
           " alternatives=" + std::to_string(g.alternatives_charged);
    if (g.retries_charged > 0) {
      out += " retries=" + std::to_string(g.retries_charged);
    }
    out += "\n";
  }
  int dop = PlanMaxDop(*r.optimized.plan);
  if (dop > 1) {
    int batch = options_.exec.batch_size > 0
                    ? options_.exec.batch_size
                    : std::max(1, store_.timing().exec_batch_size);
    out += "exec: batch=" + std::to_string(batch) +
           " dop=" + std::to_string(dop) + "\n";
  }
  return out;
}

Result<std::string> Session::Explain(const std::string& zql) {
  OODB_ASSIGN_OR_RETURN(SessionResult r, Prepare(zql));
  return ExplainHeader(r) +
         PrintPlan(*r.optimized.plan, r.ctx, /*with_costs=*/true);
}

Result<std::string> Session::ExplainAnalyze(const std::string& zql) {
  OODB_ASSIGN_OR_RETURN(SessionResult r, Prepare(zql));
  SessionMetrics::Get().analyzes->Increment();
  // Caller-owned profile: if execution fails mid-plan (governor trip,
  // injected fault), ExecutePlan returns only the error Status, but the
  // operators already recorded into this collector — render what ran.
  ExecProfile profile;
  Result<ExecStats> stats = ExecuteWithRetry(&r, &profile);
  if (!stats.ok()) CountError(stats.status().code());
  if (stats.ok()) MaybeAdapt(&r, profile);

  std::string out = ExplainHeader(r);
  out += RenderRetryTrail(r.attempts);
  if (r.replans > 0 && r.feedback != nullptr) {
    out += "replan: " + r.feedback->Summary() + "\n";
  }
  if (r.drift_evicted || r.auto_analyzed) {
    out += "adaptive: drift=" + FormatDouble(r.observed_drift, 2) + "x";
    if (r.drift_evicted) out += " cache=evicted";
    if (r.auto_analyzed) out += " analyze=triggered";
    out += "\n";
  }
  if (!stats.ok()) {
    out += "exec: FAILED(" + stats.status().ToString() + ")";
    if (governor_ != nullptr) {
      // ExecutePlan only returns a Status on failure; the live governor
      // still knows what the partial run charged.
      const GovernorStats g = governor_->stats();
      out += " governor_rows=" + std::to_string(g.rows_charged) +
             " governor_pages=" + std::to_string(g.pages_charged);
    }
    out += "\n";
  }
  out += RenderAnalyzedPlan(*r.optimized.plan, r.ctx, profile);
  if (stats.ok()) {
    out += "analyzed: rows=" + std::to_string(stats->rows) +
           " sim_io=" + FormatDouble(stats->sim_io_s, 6) +
           "s sim_cpu=" + FormatDouble(stats->sim_cpu_s, 6) +
           "s pages=" + std::to_string(stats->pages_read) +
           " max_drift=" +
           FormatDouble(MaxDriftRatio(*r.optimized.plan, profile), 2) + "x";
    if (governor_ != nullptr) {
      out += " governor_rows=" + std::to_string(stats->governor.rows_charged) +
             " governor_pages=" +
             std::to_string(stats->governor.pages_charged);
    }
    if (r.retry_backoff_s > 0.0) {
      out += " retry_backoff=" + FormatDouble(r.retry_backoff_s, 6) + "s";
    }
    out += "\n";
  }
  return out;
}

}  // namespace oodb
