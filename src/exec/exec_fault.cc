#include "src/exec/exec_fault.h"

#include <cstdlib>

#include "src/common/metrics.h"

namespace oodb {

namespace {

/// Process-wide injected-fault counter (per-execution counts live on the
/// injector). Resolved once; never freed.
Counter* InjectedCounter() {
  static Counter* c = MetricsRegistry::Global().counter(
      "oodb_exec_faults_injected_total",
      "Exec-layer faults fired by the injector (worker kills).");
  return c;
}

}  // namespace

Result<ExecFaultPolicy> ParseExecFaultSpec(const std::string& spec) {
  ExecFaultPolicy policy;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) end = spec.size();
    std::string kv = spec.substr(pos, end - pos);
    pos = end + 1;
    if (kv.empty()) continue;
    size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("exec fault spec entry without '=': " +
                                     kv);
    }
    std::string key = kv.substr(0, eq);
    std::string val = kv.substr(eq + 1);
    char* parse_end = nullptr;
    double num = std::strtod(val.c_str(), &parse_end);
    if (parse_end == val.c_str() || *parse_end != '\0') {
      return Status::InvalidArgument("exec fault spec value not numeric: " +
                                     kv);
    }
    if (key == "seed") {
      policy.seed = static_cast<uint64_t>(num);
    } else if (key == "fail_worker") {
      policy.fail_worker = static_cast<int>(num);
    } else if (key == "fail_after_batches") {
      policy.fail_after_batches = static_cast<int64_t>(num);
    } else if (key == "fail_probability") {
      policy.fail_probability = num;
    } else if (key == "fail_attempts") {
      policy.fail_attempts = static_cast<int>(num);
    } else if (key == "slow_worker") {
      policy.slow_worker = static_cast<int>(num);
    } else if (key == "slow_ms") {
      policy.slow_ms = num;
    } else if (key == "slow_sim_s") {
      policy.slow_sim_s = num;
    } else if (key == "slow_attempts") {
      policy.slow_attempts = static_cast<int>(num);
    } else if (key == "stall_pushes") {
      policy.stall_pushes = static_cast<int64_t>(num);
    } else if (key == "stall_ms") {
      policy.stall_ms = num;
    } else {
      return Status::InvalidArgument("unknown exec fault spec key: " + key);
    }
  }
  return policy;
}

ExecFaultInjector::WorkerState& ExecFaultInjector::StateLocked(int worker,
                                                               int attempt) {
  WorkerState& s = workers_[{worker, attempt}];
  if (!s.rng_seeded) {
    // Per-site stream: deterministic regardless of thread interleaving.
    s.rng = Rng(policy_.seed ^
                (0xfa017ull +
                 static_cast<uint64_t>(worker) * 0x9e3779b97f4a7c15ull +
                 static_cast<uint64_t>(attempt) * 0xc2b2ae3d27d4eb4full));
    s.rng_seeded = true;
  }
  return s;
}

void ExecFaultInjector::CountInjected() {
  injected_.fetch_add(1, std::memory_order_relaxed);
  InjectedCounter()->Increment();
}

ExecFaultInjector::Action ExecFaultInjector::OnBatchBoundary(int worker,
                                                             int attempt) {
  Action act;
  if (!policy_.enabled()) return act;
  MutexLock lock(mu_);
  WorkerState& s = StateLocked(worker, attempt);
  ++s.batches;
  if (policy_.slow_worker == worker && attempt < policy_.slow_attempts) {
    act.sleep_ms += policy_.slow_ms;
    act.sim_delay_s += policy_.slow_sim_s;
  }
  // Equality (not >=) fires the deterministic kill exactly once per fault
  // site (worker, attempt): each re-execution restarts its batch counter,
  // so every armed attempt dies at the same batch ordinal.
  if (policy_.fail_worker == worker && attempt < policy_.fail_attempts &&
      s.batches == policy_.fail_after_batches) {
    act.status = Status::WorkerFault(
        "injected worker fault (worker " + std::to_string(worker) +
        ", batch #" + std::to_string(s.batches) + ", attempt " +
        std::to_string(attempt) + ")");
    CountInjected();
  }
  return act;
}

Status ExecFaultInjector::OnTick(int worker, int attempt) {
  if (policy_.fail_probability <= 0.0) return Status::OK();
  MutexLock lock(mu_);
  WorkerState& s = StateLocked(worker, attempt);
  ++s.ticks;
  if (attempt < policy_.fail_attempts &&
      s.rng.Bernoulli(policy_.fail_probability)) {
    CountInjected();
    return Status::WorkerFault(
        "injected worker fault (worker " + std::to_string(worker) +
        ", tick #" + std::to_string(s.ticks) + ", attempt " +
        std::to_string(attempt) + ", probabilistic policy)");
  }
  return Status::OK();
}

ExecFaultInjector::Action ExecFaultInjector::OnPush(int worker, int attempt) {
  Action act;
  (void)worker;
  (void)attempt;
  if (policy_.stall_pushes <= 0) return act;
  MutexLock lock(mu_);
  if (pushes_ < policy_.stall_pushes) {
    ++pushes_;
    act.sleep_ms = policy_.stall_ms;
  }
  return act;
}

}  // namespace oodb
