#include "src/algebra/logical_op.h"

#include <sstream>

#include "src/common/strings.h"

namespace oodb {

namespace {
size_t HashCombine(size_t a, size_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ull + (a << 6) + (a >> 2));
}
}  // namespace

const char* LogicalOpKindName(LogicalOpKind kind) {
  switch (kind) {
    case LogicalOpKind::kGet:
      return "Get";
    case LogicalOpKind::kSelect:
      return "Select";
    case LogicalOpKind::kProject:
      return "Project";
    case LogicalOpKind::kMat:
      return "Mat";
    case LogicalOpKind::kUnnest:
      return "Unnest";
    case LogicalOpKind::kJoin:
      return "Join";
    case LogicalOpKind::kUnion:
      return "Union";
    case LogicalOpKind::kIntersect:
      return "Intersect";
    case LogicalOpKind::kDifference:
      return "Difference";
  }
  return "?";
}

LogicalOp LogicalOp::Get(CollectionId coll, BindingId binding) {
  LogicalOp op;
  op.kind = LogicalOpKind::kGet;
  op.coll = std::move(coll);
  op.binding = binding;
  return op;
}

LogicalOp LogicalOp::Select(ScalarExprPtr pred) {
  LogicalOp op;
  op.kind = LogicalOpKind::kSelect;
  op.pred = std::move(pred);
  return op;
}

LogicalOp LogicalOp::Project(std::vector<ScalarExprPtr> emit) {
  LogicalOp op;
  op.kind = LogicalOpKind::kProject;
  op.emit = std::move(emit);
  return op;
}

LogicalOp LogicalOp::Mat(BindingId source, FieldId field, BindingId target) {
  LogicalOp op;
  op.kind = LogicalOpKind::kMat;
  op.source = source;
  op.field = field;
  op.target = target;
  return op;
}

LogicalOp LogicalOp::MatRef(BindingId ref_binding, BindingId target) {
  return Mat(ref_binding, kInvalidField, target);
}

LogicalOp LogicalOp::Unnest(BindingId source, FieldId set_field,
                            BindingId target) {
  LogicalOp op;
  op.kind = LogicalOpKind::kUnnest;
  op.source = source;
  op.field = set_field;
  op.target = target;
  return op;
}

LogicalOp LogicalOp::Join(ScalarExprPtr pred) {
  LogicalOp op;
  op.kind = LogicalOpKind::kJoin;
  op.pred = std::move(pred);
  return op;
}

LogicalOp LogicalOp::SetOp(LogicalOpKind kind) {
  LogicalOp op;
  op.kind = kind;
  return op;
}

int LogicalOp::Arity() const {
  switch (kind) {
    case LogicalOpKind::kGet:
      return 0;
    case LogicalOpKind::kSelect:
    case LogicalOpKind::kProject:
    case LogicalOpKind::kMat:
    case LogicalOpKind::kUnnest:
      return 1;
    case LogicalOpKind::kJoin:
    case LogicalOpKind::kUnion:
    case LogicalOpKind::kIntersect:
    case LogicalOpKind::kDifference:
      return 2;
  }
  return 0;
}

bool LogicalOp::operator==(const LogicalOp& o) const {
  if (kind != o.kind) return false;
  switch (kind) {
    case LogicalOpKind::kGet:
      return coll == o.coll && binding == o.binding;
    case LogicalOpKind::kSelect:
    case LogicalOpKind::kJoin:
      return ExprPtrEquals(pred, o.pred);
    case LogicalOpKind::kProject:
      if (emit.size() != o.emit.size()) return false;
      for (size_t i = 0; i < emit.size(); ++i) {
        if (!ExprPtrEquals(emit[i], o.emit[i])) return false;
      }
      return true;
    case LogicalOpKind::kMat:
    case LogicalOpKind::kUnnest:
      return source == o.source && field == o.field && target == o.target;
    case LogicalOpKind::kUnion:
    case LogicalOpKind::kIntersect:
    case LogicalOpKind::kDifference:
      return true;
  }
  return false;
}

size_t LogicalOp::Hash() const {
  size_t h = static_cast<size_t>(kind) * 0x100000001b3ull;
  switch (kind) {
    case LogicalOpKind::kGet:
      h = HashCombine(h, std::hash<std::string>()(coll.name));
      h = HashCombine(h, static_cast<size_t>(coll.kind));
      h = HashCombine(h, static_cast<size_t>(coll.type) * 131 + binding);
      break;
    case LogicalOpKind::kSelect:
    case LogicalOpKind::kJoin:
      h = HashCombine(h, HashExprPtr(pred));
      break;
    case LogicalOpKind::kProject:
      for (const ScalarExprPtr& e : emit) h = HashCombine(h, HashExprPtr(e));
      break;
    case LogicalOpKind::kMat:
    case LogicalOpKind::kUnnest:
      h = HashCombine(h, static_cast<size_t>(source) * 1009 +
                             static_cast<size_t>(field + 1) * 31 + target);
      break;
    default:
      break;
  }
  return h;
}

std::string LogicalOp::ToString(const QueryContext& ctx) const {
  const BindingTable& b = ctx.bindings;
  const Schema& s = ctx.schema();
  switch (kind) {
    case LogicalOpKind::kGet:
      return "Get " + coll.Display(s) + ": " + b.def(binding).name;
    case LogicalOpKind::kSelect:
      return "Select " + pred->ToString(b, s);
    case LogicalOpKind::kProject: {
      std::vector<std::string> parts;
      for (const ScalarExprPtr& e : emit) parts.push_back(e->ToString(b, s));
      return "Project " + ::oodb::Join(parts, ", ");
    }
    case LogicalOpKind::kMat:
      if (field == kInvalidField) {
        return "Mat " + b.def(source).name + ": " + b.def(target).name;
      }
      return "Mat " + b.def(target).name;
    case LogicalOpKind::kUnnest:
      return "Unnest " + b.def(source).name + "." +
             s.type(b.def(source).type).field(field).name + ": " +
             b.def(target).name;
    case LogicalOpKind::kJoin:
      return "Join " + pred->ToString(b, s);
    case LogicalOpKind::kUnion:
    case LogicalOpKind::kIntersect:
    case LogicalOpKind::kDifference:
      return LogicalOpKindName(kind);
  }
  return "?";
}

BindingSet LogicalOp::OutputBindings(
    const std::vector<BindingSet>& child_scopes) const {
  switch (kind) {
    case LogicalOpKind::kGet:
      return BindingSet::Of(binding);
    case LogicalOpKind::kSelect:
      return child_scopes[0];
    case LogicalOpKind::kProject: {
      BindingSet out;
      for (const ScalarExprPtr& e : emit) {
        out = out.Union(e->ReferencedBindings());
      }
      return out;
    }
    case LogicalOpKind::kMat:
    case LogicalOpKind::kUnnest: {
      BindingSet out = child_scopes[0];
      out.Add(target);
      return out;
    }
    case LogicalOpKind::kJoin:
      return child_scopes[0].Union(child_scopes[1]);
    case LogicalOpKind::kUnion:
    case LogicalOpKind::kIntersect:
    case LogicalOpKind::kDifference:
      return child_scopes[0];
  }
  return BindingSet();
}

Status LogicalOp::Validate(const QueryContext& ctx,
                           const std::vector<BindingSet>& child_scopes) const {
  if (static_cast<int>(child_scopes.size()) != Arity()) {
    return Status::PlanError("wrong arity for " +
                             std::string(LogicalOpKindName(kind)));
  }
  const BindingTable& b = ctx.bindings;
  switch (kind) {
    case LogicalOpKind::kGet: {
      if (!b.has(binding)) return Status::PlanError("Get: unknown binding");
      OODB_ASSIGN_OR_RETURN(const CollectionInfo* info,
                            ctx.catalog->FindCollection(coll));
      if (!ctx.schema().IsSubtypeOf(info->id.type, b.def(binding).type) &&
          !ctx.schema().IsSubtypeOf(b.def(binding).type, info->id.type)) {
        return Status::TypeError("Get: binding type does not match collection");
      }
      return Status::OK();
    }
    case LogicalOpKind::kSelect:
      if (!pred) return Status::PlanError("Select: missing predicate");
      if (!child_scopes[0].ContainsAll(pred->ReferencedBindings())) {
        return Status::PlanError("Select: predicate references out of scope");
      }
      return Status::OK();
    case LogicalOpKind::kProject:
      for (const ScalarExprPtr& e : emit) {
        if (!child_scopes[0].ContainsAll(e->ReferencedBindings())) {
          return Status::PlanError("Project: expression references out of scope");
        }
      }
      return Status::OK();
    case LogicalOpKind::kMat: {
      if (!b.has(source) || !b.has(target)) {
        return Status::PlanError("Mat: unknown binding");
      }
      if (!child_scopes[0].Contains(source)) {
        return Status::PlanError("Mat: source not in scope");
      }
      if (child_scopes[0].Contains(target)) {
        return Status::PlanError("Mat: target already in scope");
      }
      if (field == kInvalidField) {
        if (!b.def(source).is_ref) {
          return Status::PlanError("Mat: ref-materialize of non-ref binding");
        }
      } else {
        const TypeDef& st = ctx.schema().type(b.def(source).type);
        if (!st.has_field(field) || st.field(field).kind != FieldKind::kRef) {
          return Status::PlanError("Mat: field is not a single reference");
        }
        if (st.field(field).target_type != b.def(target).type) {
          return Status::TypeError("Mat: target binding type mismatch");
        }
      }
      return Status::OK();
    }
    case LogicalOpKind::kUnnest: {
      if (!b.has(source) || !b.has(target)) {
        return Status::PlanError("Unnest: unknown binding");
      }
      if (!child_scopes[0].Contains(source)) {
        return Status::PlanError("Unnest: source not in scope");
      }
      if (child_scopes[0].Contains(target)) {
        return Status::PlanError("Unnest: target already in scope");
      }
      const TypeDef& st = ctx.schema().type(b.def(source).type);
      if (!st.has_field(field) || st.field(field).kind != FieldKind::kRefSet) {
        return Status::PlanError("Unnest: field is not a set of references");
      }
      return Status::OK();
    }
    case LogicalOpKind::kJoin:
      if (!pred) return Status::PlanError("Join: missing predicate");
      if (child_scopes[0].Intersects(child_scopes[1])) {
        return Status::PlanError("Join: child scopes overlap");
      }
      if (!child_scopes[0].Union(child_scopes[1])
               .ContainsAll(pred->ReferencedBindings())) {
        return Status::PlanError("Join: predicate references out of scope");
      }
      return Status::OK();
    case LogicalOpKind::kUnion:
    case LogicalOpKind::kIntersect:
    case LogicalOpKind::kDifference:
      if (child_scopes[0] != child_scopes[1]) {
        return Status::PlanError("set operator: child scopes differ");
      }
      return Status::OK();
  }
  return Status::OK();
}

LogicalExprPtr LogicalExpr::Make(LogicalOp op,
                                 std::vector<LogicalExprPtr> children) {
  auto e = std::make_shared<LogicalExpr>();
  e->op = std::move(op);
  e->children = std::move(children);
  return e;
}

BindingSet LogicalExpr::Scope() const {
  std::vector<BindingSet> child_scopes;
  child_scopes.reserve(children.size());
  for (const LogicalExprPtr& c : children) child_scopes.push_back(c->Scope());
  return op.OutputBindings(child_scopes);
}

Result<BindingSet> ValidateLogicalTree(const LogicalExpr& expr,
                                       const QueryContext& ctx) {
  std::vector<BindingSet> child_scopes;
  for (const LogicalExprPtr& c : expr.children) {
    OODB_ASSIGN_OR_RETURN(BindingSet s, ValidateLogicalTree(*c, ctx));
    child_scopes.push_back(s);
  }
  OODB_RETURN_IF_ERROR(expr.op.Validate(ctx, child_scopes));
  return expr.op.OutputBindings(child_scopes);
}

namespace {
void PrintRec(const LogicalExpr& expr, const QueryContext& ctx, int depth,
              std::ostringstream& os) {
  os << Repeat("    ", depth) << expr.op.ToString(ctx) << "\n";
  for (const LogicalExprPtr& c : expr.children) {
    PrintRec(*c, ctx, depth + 1, os);
  }
}
}  // namespace

std::string PrintLogicalTree(const LogicalExpr& expr, const QueryContext& ctx) {
  std::ostringstream os;
  PrintRec(expr, ctx, 0, os);
  return os.str();
}

}  // namespace oodb
