# Empty compiler generated dependencies file for bench_opt_perf.
# This may be replaced when dependencies are built.
