// Cardinality feedback: measured execution facts fed back into the
// estimator for an adaptive re-plan. PR 5's EXPLAIN ANALYZE machinery can
// *show* est-vs-actual drift; this module makes the optimizer *consume* it.
// A CardFeedback is extracted from an (optionally partial) ExecProfile of
// an aborted or completed run and handed to the next optimization through
// QueryContext::feedback, where DeriveLogicalProps and SelectivityEstimator
// prefer observed values over catalog statistics. Feedback is query-local
// and ephemeral — it never touches the catalog (ANALYZE owns durable
// statistics) and plans costed with it are never admitted to the plan cache.
#ifndef OODB_TRACE_CARD_FEEDBACK_H_
#define OODB_TRACE_CARD_FEEDBACK_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/storage/object_store.h"
#include "src/trace/exec_profile.h"
#include "src/volcano/plan.h"

namespace oodb {

/// Observed cardinality facts keyed by the structures the estimator already
/// resolves during costing: collections, predicate conjunct hashes (the
/// structural ScalarExpr hash *includes literal values*, so feedback for
/// `x == 7` never leaks onto `x == 8` — exactly what catches skew), join
/// predicate hashes, and (type, field) unnest fanouts.
class CardFeedback {
 public:
  void RecordScanCard(const CollectionId& id, double card);
  void RecordSelectivity(size_t conjunct_hash, double sel);
  void RecordJoinSelectivity(size_t pred_hash, double sel);
  void RecordUnnestFanout(TypeId type, FieldId field, double fanout);

  std::optional<double> ScanCard(const CollectionId& id) const;
  std::optional<double> Selectivity(size_t conjunct_hash) const;
  std::optional<double> JoinSelectivity(size_t pred_hash) const;
  std::optional<double> UnnestFanout(TypeId type, FieldId field) const;

  bool empty() const {
    return scan_cards_.empty() && selectivities_.empty() &&
           join_selectivities_.empty() && unnest_fanouts_.empty();
  }
  size_t size() const {
    return scan_cards_.size() + selectivities_.size() +
           join_selectivities_.size() + unnest_fanouts_.size();
  }

  /// One-line summary ("feedback: 2 scans, 3 conjuncts, 1 join, 0 unnests")
  /// for the re-plan trail rendering.
  std::string Summary() const;

 private:
  static std::string CollectionKey(const CollectionId& id);
  static uint64_t FieldKey(TypeId type, FieldId field) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(type)) << 32) |
           static_cast<uint32_t>(field);
  }

  std::unordered_map<std::string, double> scan_cards_;
  std::unordered_map<size_t, double> selectivities_;
  std::unordered_map<size_t, double> join_selectivities_;
  std::unordered_map<uint64_t, double> unnest_fanouts_;
};

/// Extracts feedback from an executed (or drift-aborted) plan. Walks the
/// plan tree against `profile` and records, for every node with measured
/// actuals:
///   - scan cardinalities: the *store's* current member count per scanned
///     collection (exact even when the profile is partial — a drift abort
///     stops counting mid-scan, the store does not lie);
///   - filter selectivities: actual-out over actual-in per conjunct. A
///     fused chain reports one combined actual under its top node; the
///     combined selectivity is split geometrically across the chain's
///     conjuncts, preserving the product (and so the chain's output
///     cardinality) wherever the re-plan places each conjunct;
///   - join selectivities: actual-out / (actual-left x actual-right);
///   - unnest fanouts: actual-out over actual-in.
/// Ratios are only recorded when the denominator side was actually profiled
/// with rows, so a partial profile from a FAILED run contributes exactly the
/// facts it measured and nothing else.
CardFeedback ExtractCardFeedback(const PlanNode& plan,
                                 const ExecProfile& profile,
                                 const QueryContext& ctx,
                                 const ObjectStore& store);

}  // namespace oodb

#endif  // OODB_TRACE_CARD_FEEDBACK_H_
