#include <gtest/gtest.h>

#include "src/physical/enforcers.h"
#include "tests/test_util.h"

namespace oodb {
namespace {

class EnforcerTest : public ::testing::Test {
 protected:
  EnforcerTest() : db_(MakePaperCatalog()) {
    ctx_.catalog = &db_.catalog;
    e_ = ctx_.bindings.AddGet("e", db_.employee);
    d_ = ctx_.bindings.AddMat("e.dept", db_.department, e_, db_.emp_dept);
    p_ = ctx_.bindings.AddMat("e.dept.plant", db_.plant, d_, db_.dept_plant);
  }
  PaperDb db_;
  QueryContext ctx_;
  BindingId e_, d_, p_;
};

TEST_F(EnforcerTest, PlanAssemblyStepsSingle) {
  BindingSet missing = BindingSet::Of(d_);
  BindingSet below;
  std::vector<MatStep> steps = PlanAssemblySteps(missing, ctx_, &below);
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_EQ(steps[0].source, e_);
  EXPECT_EQ(steps[0].field, db_.emp_dept);
  EXPECT_EQ(steps[0].target, d_);
  // The source object must be loaded below.
  EXPECT_TRUE(below.Contains(e_));
}

TEST_F(EnforcerTest, PlanAssemblyStepsChainInDependencyOrder) {
  BindingSet missing = BindingSet::Of(p_);
  missing.Add(d_);
  BindingSet below;
  std::vector<MatStep> steps = PlanAssemblySteps(missing, ctx_, &below);
  ASSERT_EQ(steps.size(), 2u);
  // Dept (depth 1) before plant (depth 2) — the Figure 7 multi-component
  // assembly shape.
  EXPECT_EQ(steps[0].target, d_);
  EXPECT_EQ(steps[1].target, p_);
  // d is being assembled itself, so only e is required below.
  EXPECT_TRUE(below.Contains(e_));
  EXPECT_FALSE(below.Contains(d_));
}

TEST_F(EnforcerTest, PlanAssemblyStepsRejectsGetOrigin) {
  BindingSet missing = BindingSet::Of(e_);  // a scanned binding
  EXPECT_TRUE(PlanAssemblySteps(missing, ctx_, nullptr).empty());
}

TEST_F(EnforcerTest, PlanAssemblyStepsMatRef) {
  BindingId t = ctx_.bindings.AddGet("t", db_.task);
  BindingId r =
      ctx_.bindings.AddUnnest("r", db_.employee, t, db_.task_team_members);
  BindingId obj = ctx_.bindings.AddMat("m", db_.employee, r, kInvalidField);
  BindingSet below;
  std::vector<MatStep> steps =
      PlanAssemblySteps(BindingSet::Of(obj), ctx_, &below);
  ASSERT_EQ(steps.size(), 1u);
  EXPECT_EQ(steps[0].source, r);
  EXPECT_EQ(steps[0].field, kInvalidField);
  // The reference value lives in the tuple slot: nothing required below.
  EXPECT_TRUE(below.Empty());
}

// The paper's Query 3 narrative, asserted at the search level: disabling the
// sort/assembly enforcers changes which plans exist.
TEST_F(EnforcerTest, AssemblyEnforcerEnablesIndexScanPlanForQuery3) {
  QueryContext ctx;
  OptimizedQuery with = testing::MustOptimize(3, db_, &ctx);
  EXPECT_EQ(CountOps(*with.plan, PhysOpKind::kIndexScan), 1);
  EXPECT_EQ(CountOps(*with.plan, PhysOpKind::kAssembly), 1);

  QueryContext ctx2;
  OptimizerOptions opts;
  opts.disabled_rules = {kEnforcerAssembly};
  OptimizedQuery without = testing::MustOptimize(3, db_, &ctx2, opts);
  // Without the enforcer, the index scan cannot participate (it does not
  // deliver the mayor in memory).
  EXPECT_EQ(CountOps(*without.plan, PhysOpKind::kIndexScan), 0);
}

TEST_F(EnforcerTest, EnforcerCostScalesWithInputCardinality) {
  // The assembly enforcer above the index scan (2 tuples) is far cheaper
  // than assembly over the whole collection (10000 tuples) — the reason the
  // paper's Figure 10 plan wins by three orders of magnitude.
  QueryContext ctx;
  OptimizedQuery q3 = testing::MustOptimize(3, db_, &ctx);
  const PlanNode* assembly = nullptr;
  std::function<void(const PlanNode&)> find = [&](const PlanNode& n) {
    if (n.op.kind == PhysOpKind::kAssembly) assembly = &n;
    for (const PlanNodePtr& c : n.children) find(*c);
  };
  find(*q3.plan);
  ASSERT_NE(assembly, nullptr);
  EXPECT_LT(assembly->local_cost.total(), 0.5);
}

}  // namespace
}  // namespace oodb
