#include "src/storage/index.h"

namespace oodb {

bool ValueLess::operator()(const Value& a, const Value& b) const {
  if (a.kind != b.kind) {
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  }
  return a.Compare(b) < 0;
}

void StoredIndex::Insert(const Value& key, Oid root) {
  entries_[key].push_back(root);
  ++num_entries_;
}

const std::vector<Oid>& StoredIndex::Lookup(const Value& key) const {
  static const std::vector<Oid> kEmpty;
  auto it = entries_.find(key);
  return it == entries_.end() ? kEmpty : it->second;
}

std::vector<Oid> StoredIndex::Scan(CmpOp op, const Value& v) const {
  std::vector<Oid> out;
  if (op == CmpOp::kEq) return Lookup(v);
  for (const auto& [key, oids] : entries_) {
    if (EvalCmp(op, key.Compare(v))) {
      out.insert(out.end(), oids.begin(), oids.end());
    }
  }
  return out;
}

std::vector<Oid> StoredIndex::Range(const Value& lo, const Value& hi) const {
  std::vector<Oid> out;
  for (auto it = entries_.lower_bound(lo);
       it != entries_.end() && it->first.Compare(hi) <= 0; ++it) {
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  return out;
}

}  // namespace oodb
