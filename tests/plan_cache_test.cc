// Plan cache: fingerprint-keyed reuse, literal parameterization with plan
// rebinding, statistics-version invalidation (ANALYZE, index toggles), LRU
// eviction, and concurrent sessions sharing one cache.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "tests/test_util.h"

namespace oodb {
namespace {

Session::Options WithCache(std::shared_ptr<PlanCache> cache) {
  Session::Options opts;
  opts.plan_cache = std::move(cache);
  return opts;
}

class PlanCacheTest : public ::testing::Test {
 protected:
  PlanCacheTest()
      : db_(MakePaperCatalog(0.02)),
        cache_(std::make_shared<PlanCache>(64)),
        session_(&db_.catalog, WithCache(cache_)) {
    GenOptions gen;
    gen.num_plants = 20;
    auto r = GeneratePaperData(db_, &session_.store(), gen);
    EXPECT_TRUE(r.ok()) << r.status();
  }

  PaperDb db_;
  std::shared_ptr<PlanCache> cache_;
  Session session_;
};

TEST_F(PlanCacheTest, RepeatServedFromCache) {
  const std::string q =
      "SELECT e.name FROM Employee e IN Employees WHERE e.age >= 40;";
  auto first = session_.Prepare(q);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_FALSE(first->optimized.stats.plan_cached);
  auto second = session_.Prepare(q);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(second->optimized.stats.plan_cached);
  EXPECT_EQ(first->PlanText(/*with_costs=*/true),
            second->PlanText(/*with_costs=*/true));
  EXPECT_DOUBLE_EQ(first->optimized.cost.total(),
                   second->optimized.cost.total());
  EXPECT_GE(second->optimized.stats.cache_hits, 1);
}

// With the cache off, Prepare takes exactly the seed optimization path; a
// cache miss must produce the identical plan and cost, and a hit must hand
// the same plan back — checked on all four paper queries.
TEST_F(PlanCacheTest, CacheOffAndOnAgreeOnPaperQueries) {
  Session plain(&db_.catalog, WithCache(nullptr));
  for (const char* q :
       {kQuery1Text, kQuery2Text, kQuery3Text, kQuery4Text}) {
    auto off = plain.Prepare(q);
    ASSERT_TRUE(off.ok()) << off.status();
    EXPECT_FALSE(off->optimized.stats.plan_cached);
    auto miss = session_.Prepare(q);
    ASSERT_TRUE(miss.ok()) << miss.status();
    EXPECT_FALSE(miss->optimized.stats.plan_cached);
    auto hit = session_.Prepare(q);
    ASSERT_TRUE(hit.ok()) << hit.status();
    EXPECT_TRUE(hit->optimized.stats.plan_cached) << q;
    EXPECT_EQ(off->PlanText(true), miss->PlanText(true)) << q;
    EXPECT_EQ(off->PlanText(true), hit->PlanText(true)) << q;
    EXPECT_DOUBLE_EQ(off->optimized.cost.total(),
                     miss->optimized.cost.total());
    EXPECT_DOUBLE_EQ(off->optimized.cost.total(),
                     hit->optimized.cost.total());
  }
}

// Equality predicates estimate 1/distinct regardless of the literal, so
// `time == 3` and `time == 5` land in the same selectivity bucket and share
// one cache entry; the served plan must carry the *new* literal and execute
// correctly.
TEST_F(PlanCacheTest, ParameterizedLiteralsShareEntry) {
  auto r3 = session_.Query(
      "SELECT t.name FROM Task t IN Tasks WHERE t.time == 3;");
  ASSERT_TRUE(r3.ok()) << r3.status();
  EXPECT_FALSE(r3->optimized.stats.plan_cached);
  auto r5 = session_.Query(
      "SELECT t.name FROM Task t IN Tasks WHERE t.time == 5;");
  ASSERT_TRUE(r5.ok()) << r5.status();
  EXPECT_TRUE(r5->optimized.stats.plan_cached);
  EXPECT_NE(r5->PlanText().find("5"), std::string::npos);
  EXPECT_EQ(r5->PlanText().find("== 3"), std::string::npos);

  // Rebound plan returns exactly what an uncached session returns.
  Session plain(&db_.catalog, WithCache(nullptr));
  GenOptions gen;
  gen.num_plants = 20;
  ASSERT_TRUE(GeneratePaperData(db_, &plain.store(), gen).ok());
  auto truth = plain.Query(
      "SELECT t.name FROM Task t IN Tasks WHERE t.time == 5;");
  ASSERT_TRUE(truth.ok()) << truth.status();
  EXPECT_GT(truth->exec.rows, 0);
  EXPECT_EQ(r5->exec.rows, truth->exec.rows);
  EXPECT_EQ(r5->rows(), truth->rows());
}

// Literal parameterization can be disabled: each literal then gets its own
// entry and the second query is a miss.
TEST_F(PlanCacheTest, ParameterizationOffKeysOnExactLiterals) {
  Session::Options opts = WithCache(cache_);
  opts.optimizer.plan_cache_parameterize = false;
  Session exact(&db_.catalog, opts);
  auto r3 = exact.Prepare(
      "SELECT t.name FROM Task t IN Tasks WHERE t.time == 3;");
  ASSERT_TRUE(r3.ok()) << r3.status();
  auto r5 = exact.Prepare(
      "SELECT t.name FROM Task t IN Tasks WHERE t.time == 5;");
  ASSERT_TRUE(r5.ok()) << r5.status();
  EXPECT_FALSE(r5->optimized.stats.plan_cached);
  auto again = exact.Prepare(
      "SELECT t.name FROM Task t IN Tasks WHERE t.time == 3;");
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_TRUE(again->optimized.stats.plan_cached);
}

// ANALYZE bumps the catalog stats_version; the next probe must drop the
// stale entry and re-optimize rather than serve a plan costed under old
// statistics.
TEST_F(PlanCacheTest, AnalyzeInvalidatesCachedPlans) {
  const std::string q =
      "SELECT e.name FROM Employee e IN Employees WHERE e.age >= 40;";
  ASSERT_TRUE(session_.Prepare(q).ok());
  auto hit = session_.Prepare(q);
  ASSERT_TRUE(hit.ok()) << hit.status();
  EXPECT_TRUE(hit->optimized.stats.plan_cached);

  const uint64_t before = db_.catalog.stats_version();
  ASSERT_TRUE(session_.Analyze().ok());
  EXPECT_GT(db_.catalog.stats_version(), before);

  // Never a stale plan: either ANALYZE moved the predicate's selectivity
  // bucket (the fingerprint itself changes — a plain miss) or it did not
  // (the version mismatch reclaims the entry); both re-optimize.
  auto after = session_.Prepare(q);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_FALSE(after->optimized.stats.plan_cached);

  // The freshly re-optimized plan is cached under the new version.
  auto rehit = session_.Prepare(q);
  ASSERT_TRUE(rehit.ok()) << rehit.status();
  EXPECT_TRUE(rehit->optimized.stats.plan_cached);
}

// A statistics bump that does not move the query's own selectivity bucket
// (here: a cardinality change on an unrelated collection) leaves the
// fingerprint intact — the probe must meet the stale entry, reclaim it, and
// count an invalidation.
TEST_F(PlanCacheTest, VersionBumpReclaimsStaleEntryOnContact) {
  const std::string q =
      "SELECT t.name FROM Task t IN Tasks WHERE t.time == 3;";
  ASSERT_TRUE(session_.Prepare(q).ok());
  ASSERT_TRUE(session_.Prepare(q)->optimized.stats.plan_cached);

  CollectionId cities = CollectionId::Set("Cities", db_.city);
  int64_t card = (*db_.catalog.FindCollection(cities))->cardinality;
  ASSERT_TRUE(db_.catalog.SetCardinality(cities, card + 1).ok());

  auto after = session_.Prepare(q);
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_FALSE(after->optimized.stats.plan_cached);
  EXPECT_GE(cache_->stats().invalidations, 1);
  EXPECT_TRUE(session_.Prepare(q)->optimized.stats.plan_cached);
}

// Disabling an index must invalidate plans that used it (the Index Scan
// disappears); re-enabling invalidates again and the Index Scan returns.
TEST_F(PlanCacheTest, IndexToggleInvalidatesCachedPlans) {
  const std::string q =
      "SELECT c.name FROM City c IN Cities WHERE c.mayor.name == \"Joe\";";
  auto indexed = session_.Prepare(q);
  ASSERT_TRUE(indexed.ok()) << indexed.status();
  ASSERT_NE(indexed->PlanText().find("Index Scan"), std::string::npos);
  ASSERT_TRUE(session_.Prepare(q)->optimized.stats.plan_cached);

  ASSERT_TRUE(db_.catalog.SetIndexEnabled(kIdxCitiesMayorName, false).ok());
  auto without = session_.Prepare(q);
  ASSERT_TRUE(without.ok()) << without.status();
  EXPECT_FALSE(without->optimized.stats.plan_cached);
  // (No invalidation-counter assertion here: toggling the index also moves
  // the equality predicate's selectivity estimate, so the fingerprint
  // itself changes and the stale entry is simply never probed again.)
  EXPECT_EQ(without->PlanText().find("Index Scan"), std::string::npos);

  ASSERT_TRUE(db_.catalog.SetIndexEnabled(kIdxCitiesMayorName, true).ok());
  auto with = session_.Prepare(q);
  ASSERT_TRUE(with.ok()) << with.status();
  EXPECT_FALSE(with->optimized.stats.plan_cached);
  EXPECT_NE(with->PlanText().find("Index Scan"), std::string::npos);
}

TEST_F(PlanCacheTest, LruEvictsBeyondCapacity) {
  auto tiny = std::make_shared<PlanCache>(1);
  Session s(&db_.catalog, WithCache(tiny));
  const std::string q1 =
      "SELECT e.name FROM Employee e IN Employees WHERE e.age >= 40;";
  const std::string q2 =
      "SELECT d.name FROM Department d IN Department WHERE d.floor == 3;";
  ASSERT_TRUE(s.Prepare(q1).ok());
  ASSERT_TRUE(s.Prepare(q2).ok());
  EXPECT_GE(tiny->stats().evictions, 1);
  EXPECT_LE(tiny->stats().entries, 1);
  auto r = s.Prepare(q1);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->optimized.stats.plan_cached);
}

TEST_F(PlanCacheTest, ExplainAnnotatesCachedPlan) {
  const std::string q =
      "SELECT e.name FROM Employee e IN Employees WHERE e.age >= 40;";
  auto cold = session_.Explain(q);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_EQ(cold->find("plan: cached"), std::string::npos);
  EXPECT_NE(cold->find("plan cache:"), std::string::npos);
  auto warm = session_.Explain(q);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_NE(warm->find("plan: cached"), std::string::npos);
  EXPECT_NE(warm->find("hits="), std::string::npos);
}

// Four sessions on four threads hammering one shared cache over a mix of
// queries (repeats + literal variants). Exercises the sharded lock paths:
// concurrent shared-lock hits, insert races on the same key, evictions.
TEST_F(PlanCacheTest, ConcurrentSessionsShareCacheSafely) {
  const std::vector<std::string> mix = {
      std::string(kQuery1Text),
      std::string(kQuery2Text),
      "SELECT t.name FROM Task t IN Tasks WHERE t.time == 3;",
      "SELECT t.name FROM Task t IN Tasks WHERE t.time == 5;",
      "SELECT e.name FROM Employee e IN Employees WHERE e.age >= 40;",
      "SELECT e.name FROM Employee e IN Employees WHERE e.age >= 45;",
  };
  constexpr int kThreads = 4;
  constexpr int kIters = 100;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Session local(&db_.catalog, WithCache(cache_));
      for (int i = 0; i < kIters; ++i) {
        const std::string& q = mix[(i + t) % mix.size()];
        auto r = local.Prepare(q);
        if (!r.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  PlanCacheStats s = cache_->stats();
  EXPECT_GE(s.hits, kThreads);  // repeats must have been served warm
  EXPECT_EQ(s.hits + s.misses,
            static_cast<int64_t>(kThreads) * kIters);
}

// The heavy concurrency stress: 16 threads hammer one shared cache with a
// mixed workload — warm repeats, cold keys, and concurrent ANALYZE-style
// stats_version bumps that invalidate entries mid-flight — so every shard
// transition (shared-lock hit, exclusive recency refresh, stale-entry
// reclamation, insert, LRU eviction) races every other. CI repeats exactly
// this binary under ThreadSanitizer; in Debug the lock-rank registry checks
// every acquisition the workload makes. Correctness bar: no failed Prepare,
// accounting that adds up, the bump storm forced stale-entry reclamation,
// and after a final bump no survivor entry is served stale.
TEST_F(PlanCacheTest, StressManyThreadsWithInvalidationStorm) {
  const std::vector<std::string> mix = {
      std::string(kQuery1Text),
      std::string(kQuery2Text),
      "SELECT t.name FROM Task t IN Tasks WHERE t.time == 3;",
      "SELECT t.name FROM Task t IN Tasks WHERE t.time == 5;",
      "SELECT e.name FROM Employee e IN Employees WHERE e.age >= 40;",
      "SELECT e.name FROM Employee e IN Employees WHERE e.age >= 45;",
      "SELECT e.name FROM Employee e IN Employees WHERE e.age >= 50;",
      "SELECT t.name FROM Task t IN Tasks WHERE t.time >= 7;",
  };
  constexpr int kThreads = 16;
  constexpr int kIters = 60;
  constexpr int kBumpEvery = 16;  // ~3-4 bumps per thread per run
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Session local(&db_.catalog, WithCache(cache_));
      for (int i = 0; i < kIters; ++i) {
        if ((i + t) % kBumpEvery == 0) {
          // The ANALYZE shape: catalog statistics move while other threads
          // are mid-Prepare. Every cached entry optimized under the old
          // version must be invalidated on its next contact (Lookup serves
          // only exact version matches, so a stale serve is structurally
          // impossible — TSan's job here is the counter and map races).
          db_.catalog.BumpStatsVersion();
        }
        const std::string& q = mix[(i * 7 + t) % mix.size()];
        auto r = local.Prepare(q);
        if (!r.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  PlanCacheStats s = cache_->stats();
  EXPECT_EQ(s.hits + s.misses, static_cast<int64_t>(kThreads) * kIters);
  // The bump storm must actually have forced stale-entry reclamation, and
  // warm repeats between bumps must still have been served.
  EXPECT_GE(s.invalidations, 1);
  EXPECT_GE(s.hits, 1);

  // After one final bump every surviving entry is stale: the next touch
  // must re-optimize (never serve the pre-bump plan), and only then is the
  // query warm again under the new version. One query suffices —
  // parameterization makes several mix entries share a cache key, so a
  // per-query sweep would see legitimate warm hits from its own earlier
  // iterations.
  db_.catalog.BumpStatsVersion();
  auto cold = session_.Prepare(mix[0]);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_FALSE(cold->optimized.stats.plan_cached);
  auto warm = session_.Prepare(mix[0]);
  ASSERT_TRUE(warm.ok()) << warm.status();
  EXPECT_TRUE(warm->optimized.stats.plan_cached);
}

// Regression: the catalog copy/move operations used to copy stats_version_
// verbatim, so a session over a copied catalog could collide with the
// original's version numbers and be served the original's cached plans as
// false hits. Copies must start a fresh, disjoint version space — and stay
// disjoint under equal numbers of subsequent bumps.
TEST(CatalogVersionSpaceTest, CopyAndMoveReseedStatsVersion) {
  PaperDb db = MakePaperCatalog(0.02);
  Catalog copy(db.catalog);
  EXPECT_NE(copy.stats_version(), db.catalog.stats_version());
  for (int i = 0; i < 4; ++i) {
    copy.BumpStatsVersion();
    db.catalog.BumpStatsVersion();
    EXPECT_NE(copy.stats_version(), db.catalog.stats_version());
  }
  Catalog assigned;
  assigned = db.catalog;
  EXPECT_NE(assigned.stats_version(), db.catalog.stats_version());
  EXPECT_NE(assigned.stats_version(), copy.stats_version());
  Catalog moved(std::move(assigned));
  EXPECT_NE(moved.stats_version(), db.catalog.stats_version());
  EXPECT_NE(moved.stats_version(), copy.stats_version());
}

// End-to-end shape of the same regression: two sessions sharing one cache
// but backed by *different* catalog instances (original and copy) must
// never serve each other's entries, even though fingerprints agree.
TEST_F(PlanCacheTest, CatalogCopyNeverHitsOriginalsEntries) {
  const std::string q =
      "SELECT e.name FROM Employee e IN Employees WHERE e.age >= 40;";
  ASSERT_TRUE(session_.Prepare(q).ok());
  ASSERT_TRUE(session_.Prepare(q)->optimized.stats.plan_cached);

  Catalog copy(db_.catalog);
  Session twin(&copy, WithCache(cache_));
  auto cold = twin.Prepare(q);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_FALSE(cold->optimized.stats.plan_cached);
  // The copy caches under its own version space and warms up normally.
  EXPECT_TRUE(twin.Prepare(q)->optimized.stats.plan_cached);
  // The original's entry is untouched by the twin's traffic.
  EXPECT_TRUE(session_.Prepare(q)->optimized.stats.plan_cached);
}

// Regression: ANALYZE used to defer its single version bump to the end of
// the statistics refresh, leaving a window where a concurrent Prepare could
// cache a plan costed against partially-updated statistics under the
// pre-ANALYZE version — and have it served until the trailing bump landed.
// The fix brackets the mutation window with a leading and a trailing bump,
// so one ANALYZE moves the version by at least two.
TEST_F(PlanCacheTest, AnalyzeBracketsMutationWindow) {
  const uint64_t before = db_.catalog.stats_version();
  ASSERT_TRUE(session_.Analyze().ok());
  EXPECT_GE(db_.catalog.stats_version(), before + 2);
}

// The concurrent shape of the bracket discipline, TSan-clean by design: a
// mutator thread continuously applies bumping statistics writes to Cities
// (SetCardinality bumps the version before any reader can observe the new
// value through a cache key) while preparer threads hammer the shared cache
// with Tasks/Employees queries. The catalog has no internal lock around
// collection statistics, so the races under test are exactly the version
// atomics and the cache's shard transitions — after the storm, no entry may
// be served stale.
TEST_F(PlanCacheTest, ThreadedBumpingMutatorsNeverYieldStaleServes) {
  const std::vector<std::string> mix = {
      "SELECT t.name FROM Task t IN Tasks WHERE t.time == 3;",
      "SELECT e.name FROM Employee e IN Employees WHERE e.age >= 40;",
      "SELECT e.name FROM Employee e IN Employees WHERE e.age >= 45;",
      "SELECT t.name FROM Task t IN Tasks WHERE t.time >= 7;",
  };
  constexpr int kPreparers = 6;
  constexpr int kIters = 50;
  std::atomic<int> failures{0};
  std::atomic<bool> done{false};
  CollectionId cities = CollectionId::Set("Cities", db_.city);
  const int64_t base = (*db_.catalog.FindCollection(cities))->cardinality;
  std::thread mutator([&] {
    int64_t v = base;
    while (!done.load(std::memory_order_relaxed)) {
      ++v;
      if (!db_.catalog.SetCardinality(cities, v).ok()) {
        failures.fetch_add(1);
      }
    }
  });
  std::vector<std::thread> threads;
  threads.reserve(kPreparers);
  for (int t = 0; t < kPreparers; ++t) {
    threads.emplace_back([&, t] {
      Session local(&db_.catalog, WithCache(cache_));
      for (int i = 0; i < kIters; ++i) {
        auto r = local.Prepare(mix[(i + t) % mix.size()]);
        if (!r.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  done.store(true);
  mutator.join();
  EXPECT_EQ(failures.load(), 0);
  PlanCacheStats s = cache_->stats();
  EXPECT_EQ(s.hits + s.misses,
            static_cast<int64_t>(kPreparers) * kIters);
  // With the mutator quiet, the usual freshness discipline holds: one more
  // bump makes every survivor stale, then the re-optimized entry is warm.
  db_.catalog.BumpStatsVersion();
  auto cold = session_.Prepare(mix[0]);
  ASSERT_TRUE(cold.ok()) << cold.status();
  EXPECT_FALSE(cold->optimized.stats.plan_cached);
  EXPECT_TRUE(session_.Prepare(mix[0])->optimized.stats.plan_cached);
  ASSERT_TRUE(db_.catalog.SetCardinality(cities, base).ok());
}

// Drift-based eviction: a cached plan whose execution shows cardinality
// drift past adaptive.evict_drift_threshold is retired from the cache even
// though no ANALYZE ever bumped the version — the next Prepare re-optimizes.
TEST_F(PlanCacheTest, DriftEvictionRetiresMisestimatedPlan) {
  Session::Options opts = WithCache(cache_);
  opts.adaptive.evict_drift_threshold = 8.0;
  Session s(&db_.catalog, opts);
  GenOptions gen;
  gen.num_plants = 20;
  ASSERT_TRUE(GeneratePaperData(db_, &s.store(), gen).ok());

  CollectionId employees = CollectionId::Set("Employees", db_.employee);
  const int64_t truth =
      (*db_.catalog.FindCollection(employees))->cardinality;
  ASSERT_TRUE(db_.catalog.SetCardinality(employees, 1).ok());

  const std::string q = "SELECT e.name FROM Employee e IN Employees;";
  auto r = s.Query(q);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r->observed_drift, 8.0);
  EXPECT_TRUE(r->drift_evicted);
  EXPECT_GE(cache_->stats().drift_evictions, 1);
  auto again = s.Prepare(q);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_FALSE(again->optimized.stats.plan_cached);

  ASSERT_TRUE(db_.catalog.SetCardinality(employees, truth).ok());
}

// Below the eviction threshold the drift is still recorded on the entry
// (the observability hook sees it) but the plan keeps being served.
TEST_F(PlanCacheTest, DriftBelowThresholdIsRecordedNotEvicted) {
  Session::Options opts = WithCache(cache_);
  opts.adaptive.evict_drift_threshold = 1e6;
  Session s(&db_.catalog, opts);
  GenOptions gen;
  gen.num_plants = 20;
  ASSERT_TRUE(GeneratePaperData(db_, &s.store(), gen).ok());

  CollectionId employees = CollectionId::Set("Employees", db_.employee);
  const int64_t truth =
      (*db_.catalog.FindCollection(employees))->cardinality;
  ASSERT_TRUE(db_.catalog.SetCardinality(employees, 1).ok());

  const std::string q = "SELECT e.name FROM Employee e IN Employees;";
  auto r = s.Query(q);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r->observed_drift, 8.0);
  EXPECT_FALSE(r->drift_evicted);
  ASSERT_TRUE(r->cache_keyed);
  EXPECT_GE(cache_->ObservedDrift(r->cache_key), r->observed_drift);
  EXPECT_EQ(cache_->stats().drift_evictions, 0);
  auto again = s.Prepare(q);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_TRUE(again->optimized.stats.plan_cached);

  ASSERT_TRUE(db_.catalog.SetCardinality(employees, truth).ok());
}

// Regression for the selectivity-bucket boundary: the bucket used to come
// from llround(log2(sel) * 2), whose libm last-ulp jitter made literals
// sitting exactly on a half-octave edge (powers of two and their sqrt(1/2)
// multiples) bucket differently across platforms — and llround *rounds*, so
// selectivities up to 1.19x apart on opposite sides of an edge shared a
// bucket while same-edge neighbors split. The frexp-based bucket has floor
// semantics: bucket k covers [2^(k/2), 2^((k+1)/2)) exactly.
TEST(SelectivityBucketBoundaryTest, EdgeLiteralsBucketByFloorSemantics) {
  Catalog catalog;
  Schema& s = catalog.schema();
  TypeId thing = s.AddType("Thing", 16);
  FieldDef v;
  v.name = "v";
  v.kind = FieldKind::kInt;
  v.distinct_values = 17;
  v.min_value = 0;
  v.max_value = 16;  // range width 16: `x.v >= lit` interpolates to lit/16ths
  s.mutable_type(thing).AddField(v);
  ASSERT_TRUE(catalog.AddSet("Things", thing, 100).ok());

  auto fp = [&](int lit) {
    QueryContext ctx;
    ctx.catalog = &catalog;
    auto logical = ParseAndSimplify("SELECT x.v FROM Thing x IN Things "
                                    "WHERE x.v >= " + std::to_string(lit) +
                                    ";", &ctx);
    EXPECT_TRUE(logical.ok()) << logical.status();
    return FingerprintQuery(**logical, ctx, /*parameterize=*/true).fp;
  };

  // sel(8) = 1 - 8/16 = 0.5 = 2^-1, exactly on a half-octave edge: it
  // starts bucket -2 = [0.5, 0.7071). sel(5) = 0.6875 lies inside the same
  // bucket; sel(9) = 0.4375 lies below the edge in bucket -3. The old
  // rounding bucket put 0.4375 (log2*2 = -2.39, rounds to -2) WITH 0.5 and
  // was one libm ulp away from splitting 0.5 itself.
  EXPECT_EQ(fp(8), fp(5));
  EXPECT_NE(fp(8), fp(9));
  // sel(0) clamps to 1.0 = 2^0 — the other exact edge; bucket 0 with
  // nothing above it in (1.0, 1.19) reachable here, so it only must differ
  // from bucket -2.
  EXPECT_NE(fp(0), fp(8));
  // Determinism across repeated evaluation of the same edge literal.
  EXPECT_EQ(fp(8), fp(8));
}

}  // namespace
}  // namespace oodb
