file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_extensibility.dir/bench_ablation_extensibility.cc.o"
  "CMakeFiles/bench_ablation_extensibility.dir/bench_ablation_extensibility.cc.o.d"
  "bench_ablation_extensibility"
  "bench_ablation_extensibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_extensibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
