#include "src/common/governor.h"

#include "src/common/metrics.h"

namespace oodb {

namespace {

/// Process-wide trip counters by kind (per-query counts live in
/// GovernorStats). Resolved once; counters are never deallocated.
struct GovernorMetrics {
  Counter* deadline_trips;
  Counter* cancel_trips;
  Counter* budget_trips;

  static const GovernorMetrics& Get() {
    static const GovernorMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      GovernorMetrics m;
      m.deadline_trips = r.counter("oodb_governor_deadline_trips_total",
                                   "Queries stopped at their deadline.");
      m.cancel_trips = r.counter("oodb_governor_cancel_trips_total",
                                 "Queries stopped by cancellation.");
      m.budget_trips =
          r.counter("oodb_governor_budget_trips_total",
                    "Queries stopped by a resource budget (memo, "
                    "alternatives, rows, pages, or tracked bytes).");
      return m;
    }();
    return m;
  }
};

}  // namespace

QueryGovernor::QueryGovernor(GovernorOptions options)
    : options_(std::move(options)), armed_at_(std::chrono::steady_clock::now()) {
  if (options_.deadline_ms > 0.0) {
    deadline_ = armed_at_ + std::chrono::duration_cast<
                                std::chrono::steady_clock::duration>(
                                std::chrono::duration<double, std::milli>(
                                    options_.deadline_ms));
  }
}

Status QueryGovernor::TripLocked(Status status) {
  if (trip_.ok()) {
    trip_ = std::move(status);
    switch (trip_.code()) {
      case StatusCode::kDeadlineExceeded:
        ++stats_.deadline_trips;
        GovernorMetrics::Get().deadline_trips->Increment();
        break;
      case StatusCode::kCancelled:
        ++stats_.cancel_trips;
        GovernorMetrics::Get().cancel_trips->Increment();
        break;
      default:
        ++stats_.budget_trips;
        GovernorMetrics::Get().budget_trips->Increment();
        break;
    }
  }
  return trip_;
}

Status QueryGovernor::CheckCancelAndDeadlineLocked(const char* where) {
  if (!trip_.ok()) return trip_;
  if (options_.cancel != nullptr && options_.cancel->cancel_requested()) {
    return TripLocked(Status::Cancelled(std::string("query cancelled (") +
                                        where + ")"));
  }
  if (options_.deadline_ms > 0.0 &&
      std::chrono::steady_clock::now() >= deadline_) {
    return TripLocked(Status::DeadlineExceeded(
        "deadline of " + std::to_string(options_.deadline_ms) +
        " ms exceeded (" + where + ")"));
  }
  return Status::OK();
}

Status QueryGovernor::CheckSearch(int64_t memo_groups, int64_t memo_mexprs) {
  MutexLock lock(mu_);
  OODB_RETURN_IF_ERROR(CheckCancelAndDeadlineLocked("explore"));
  if (options_.max_memo_groups > 0 && memo_groups > options_.max_memo_groups) {
    return TripLocked(Status::BudgetExhausted(
        "memo group budget exhausted: " + std::to_string(memo_groups) + " > " +
        std::to_string(options_.max_memo_groups)));
  }
  if (options_.max_memo_mexprs > 0 && memo_mexprs > options_.max_memo_mexprs) {
    return TripLocked(Status::BudgetExhausted(
        "memo m-expr budget exhausted: " + std::to_string(memo_mexprs) +
        " > " + std::to_string(options_.max_memo_mexprs)));
  }
  return Status::OK();
}

Status QueryGovernor::CheckOptimizeEntry() {
  MutexLock lock(mu_);
  return CheckCancelAndDeadlineLocked("optimize");
}

Status QueryGovernor::ChargeAlternative() {
  MutexLock lock(mu_);
  if (!trip_.ok()) return trip_;
  ++alternatives_;
  stats_.alternatives_charged = alternatives_;
  if (options_.max_phys_alternatives > 0 &&
      alternatives_ > options_.max_phys_alternatives) {
    return TripLocked(Status::BudgetExhausted(
        "physical-alternative budget exhausted: " +
        std::to_string(alternatives_) + " > " +
        std::to_string(options_.max_phys_alternatives)));
  }
  return Status::OK();
}

Status QueryGovernor::CheckExec(int64_t pages_read) {
  MutexLock lock(mu_);
  OODB_RETURN_IF_ERROR(CheckCancelAndDeadlineLocked("execute"));
  if (pages_read > stats_.pages_charged) stats_.pages_charged = pages_read;
  if (options_.max_exec_pages > 0 && pages_read > options_.max_exec_pages) {
    return TripLocked(Status::BudgetExhausted(
        "simulated I/O budget exhausted: " + std::to_string(pages_read) +
        " pages > " + std::to_string(options_.max_exec_pages)));
  }
  return Status::OK();
}

Status QueryGovernor::ChargeRows(int64_t n) {
  MutexLock lock(mu_);
  if (!trip_.ok()) return trip_;
  rows_ += n;
  stats_.rows_charged = rows_;
  if (options_.max_exec_rows > 0 && rows_ > options_.max_exec_rows) {
    return TripLocked(Status::BudgetExhausted(
        "row budget exhausted: " + std::to_string(rows_) + " > " +
        std::to_string(options_.max_exec_rows)));
  }
  return Status::OK();
}

Status QueryGovernor::ChargeRetry() {
  MutexLock lock(mu_);
  if (!trip_.ok()) return trip_;
  ++retries_;
  stats_.retries_charged = retries_;
  if (options_.max_retries > 0 && retries_ > options_.max_retries) {
    return TripLocked(Status::BudgetExhausted(
        "retry budget exhausted: " + std::to_string(retries_) + " > " +
        std::to_string(options_.max_retries)));
  }
  return Status::OK();
}

Status QueryGovernor::ChargeTrackedBytes(int64_t bytes) {
  MutexLock lock(mu_);
  if (!trip_.ok()) return trip_;
  tracked_bytes_ += bytes;
  if (tracked_bytes_ > stats_.tracked_bytes_peak) {
    stats_.tracked_bytes_peak = tracked_bytes_;
  }
  if (options_.max_tracked_bytes > 0 &&
      tracked_bytes_ > options_.max_tracked_bytes) {
    return TripLocked(Status::BudgetExhausted(
        "tracked memory budget exhausted: " + std::to_string(tracked_bytes_) +
        " bytes > " + std::to_string(options_.max_tracked_bytes)));
  }
  return Status::OK();
}

}  // namespace oodb
