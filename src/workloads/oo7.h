// An OO7-inspired CAD workload (Carey/DeWitt/Naughton's 1993 OODB
// benchmark domain): modules -> complex assemblies -> base assemblies ->
// composite parts -> atomic parts, with documentation. This is the
// complex-object world the paper's assembly operator (REVELATION) was built
// for; it exercises deep path expressions, multi-level unnest chains,
// set-valued traversals, and path indexes at depth — on a schema entirely
// different from the paper's Table 1.
#ifndef OODB_WORKLOADS_OO7_H_
#define OODB_WORKLOADS_OO7_H_

#include "src/catalog/catalog.h"
#include "src/storage/object_store.h"

namespace oodb {

/// Scale knobs (the "small" configuration by default, scaled down further
/// for unit tests).
struct Oo7Options {
  uint64_t seed = 7;
  int num_modules = 1;
  int complex_per_module = 5;       ///< complex assemblies per module
  int base_per_complex = 10;        ///< base assemblies per complex assembly
  int components_per_base = 3;      ///< composite parts per base assembly
  int num_composite_parts = 50;     ///< shared component library
  int atomic_per_composite = 20;
  int num_build_dates = 100;
  int num_doc_titles = 25;
};

/// The OO7 catalog plus handles, and the generated population.
struct Oo7Db {
  Catalog catalog;

  TypeId atomic_part, composite_part, document, base_assembly,
      complex_assembly, module;

  FieldId atomic_id, atomic_x, atomic_y, atomic_build_date, atomic_part_of;
  FieldId comp_id, comp_build_date, comp_root_part, comp_parts, comp_doc;
  FieldId doc_title, doc_text;
  FieldId base_id, base_build_date, base_components;
  FieldId complex_id, complex_build_date, complex_subassemblies;
  FieldId module_id, module_man, module_design_root;

  std::vector<Oid> modules, complex_assemblies, base_assemblies,
      composite_parts, atomic_parts, documents;
};

/// Index names registered by MakeOo7.
inline constexpr const char* kOo7IdxAtomicId = "oo7_atomic_id";
inline constexpr const char* kOo7IdxCompositeDocTitle = "oo7_comp_doc_title";
inline constexpr const char* kOo7IdxBaseBuildDate = "oo7_base_build_date";

/// Builds the schema/catalog and populates `store` (which the caller must
/// construct over `db->catalog` — use MakeOo7Store for the common case).
Status PopulateOo7(Oo7Db* db, ObjectStore* store, const Oo7Options& options);

/// Builds catalog + store + data in one go.
struct Oo7Instance {
  std::unique_ptr<Oo7Db> db;
  std::unique_ptr<ObjectStore> store;
};
Result<Oo7Instance> MakeOo7(Oo7Options options = {});

/// Builds only the catalog part of an Oo7Db (no data) — statistics are set
/// to the values `options` implies, so plans can be studied without data.
std::unique_ptr<Oo7Db> MakeOo7Catalog(const Oo7Options& options);

// --- OO7-inspired queries (ZQL) ---

/// Q1: exact-match lookup of an atomic part by id (index).
std::string Oo7QueryExactMatch(int64_t id);

/// Q5: base assemblies with a component composite part newer than the
/// assembly itself (set-valued path + cross-component comparison).
inline constexpr const char* kOo7QueryNewerComponents =
    "SELECT b.id FROM BaseAssembly b IN BaseAssemblies, "
    "CompositePart p IN b.components "
    "WHERE p.buildDate > b.buildDate;";

/// T1-style traversal: module -> design root -> subassemblies ->
/// components -> atomic parts (three set-valued hops).
inline constexpr const char* kOo7QueryTraversal =
    "SELECT a.id FROM Module m IN Modules, "
    "BaseAssembly b IN m.designRoot.subAssemblies, "
    "CompositePart p IN b.components, "
    "AtomicPart a IN p.parts "
    "WHERE a.x > a.y;";

/// Documentation path-index query: composite parts by document title
/// (collapse-to-index-scan over a Mat chain).
std::string Oo7QueryByDocTitle(const std::string& title);

}  // namespace oodb

#endif  // OODB_WORKLOADS_OO7_H_
