#include "tests/test_util.h"

namespace oodb {
namespace testing {

bool PlanContains(const PlanNode& plan, const QueryContext& ctx,
                  const std::string& needle) {
  for (const std::string& op : PlanOpStrings(plan, ctx)) {
    if (op.find(needle) != std::string::npos) return true;
  }
  return false;
}

static void CollectKinds(const PlanNode& plan, std::vector<PhysOpKind>* out) {
  out->push_back(plan.op.kind);
  for (const PlanNodePtr& c : plan.children) CollectKinds(*c, out);
}

std::vector<PhysOpKind> PlanKinds(const PlanNode& plan) {
  std::vector<PhysOpKind> out;
  CollectKinds(plan, &out);
  return out;
}

OptimizedQuery MustOptimize(int n, const PaperDb& db, QueryContext* ctx,
                            OptimizerOptions opts) {
  Result<LogicalExprPtr> logical = BuildPaperQuery(n, db, ctx);
  EXPECT_TRUE(logical.ok()) << logical.status();
  if (!logical.ok()) std::abort();
  // Tests always run the static verifier, whatever the build default: every
  // plan any test optimizes doubles as a verifier false-positive probe.
  opts.verify_plans = true;
  Optimizer opt(&db.catalog, std::move(opts));
  Result<OptimizedQuery> r = opt.Optimize(**logical, ctx);
  EXPECT_TRUE(r.ok()) << r.status();
  if (!r.ok()) std::abort();
  EXPECT_TRUE(r->stats.verify_error.empty())
      << "paper query " << n << " failed verification:\n"
      << r->stats.verify_error;
  return *std::move(r);
}

}  // namespace testing

ZqlQueryPtr ParseZqlForTest(const std::string& text) {
  Result<ZqlQueryPtr> q = ParseZql(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return q.ok() ? *q : nullptr;
}

}  // namespace oodb
