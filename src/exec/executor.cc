#include "src/exec/executor.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

#include "src/exec/batch_pool.h"

namespace oodb {

namespace {

/// Finds the topmost Alg-Project in the plan (property enforcers — e.g. a
/// Sort satisfying an ORDER BY — may sit above it). Output rows are its
/// emit list evaluated against each final tuple, whose slots survive every
/// order-preserving or -enforcing operator above the projection.
const PhysicalOp* FindProject(const PlanNode& node) {
  if (node.op.kind == PhysOpKind::kAlgProject) return &node.op;
  for (const PlanNodePtr& c : node.children) {
    if (const PhysicalOp* p = FindProject(*c)) return p;
  }
  return nullptr;
}

int MaxDop(const PlanNode& node) {
  int dop = node.op.kind == PhysOpKind::kExchange ? std::max(1, node.op.dop) : 1;
  for (const PlanNodePtr& c : node.children) dop = std::max(dop, MaxDop(*c));
  return dop;
}

/// CI lever: OODB_FORCE_ANALYZE=1 turns every execution into an analyzed
/// one, proving the instrumentation never skews results. Read once.
bool ForceAnalyze() {
  static const bool forced = [] {
    const char* v = std::getenv("OODB_FORCE_ANALYZE");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
  }();
  return forced;
}

/// Process default for columnar execution (OODB_VECTORIZE=1). Read once;
/// ExecOptions::vectorize overrides per run.
bool EnvVectorize() {
  static const bool on = [] {
    const char* v = std::getenv("OODB_VECTORIZE");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
  }();
  return on;
}

/// Process-wide exec-fault default (OODB_EXEC_FAULTS spec; read once).
/// Used only when the per-run policy is left inert. A malformed spec is
/// reported once and ignored rather than failing every query.
const ExecFaultPolicy& EnvExecFaults() {
  static const ExecFaultPolicy policy = [] {
    const char* v = std::getenv("OODB_EXEC_FAULTS");
    if (v == nullptr || v[0] == '\0') return ExecFaultPolicy{};
    Result<ExecFaultPolicy> parsed = ParseExecFaultSpec(v);
    if (!parsed.ok()) {
      std::fprintf(stderr, "OODB_EXEC_FAULTS ignored: %s\n",
                   parsed.status().ToString().c_str());
      return ExecFaultPolicy{};
    }
    return *parsed;
  }();
  return policy;
}

}  // namespace

Result<ExecStats> ExecutePlan(const PlanNode& plan, ObjectStore* store,
                              QueryContext* ctx, ExecOptions options) {
  if (options.cold_start) store->ResetSimulation();
  ExecEnv env;
  env.store = store;
  env.ctx = ctx;
  env.governor = options.governor;
  env.batch_size = options.batch_size > 0
                       ? static_cast<size_t>(options.batch_size)
                       : static_cast<size_t>(std::max(
                             1, store->timing().exec_batch_size));
  env.vectorize =
      options.vectorize < 0 ? EnvVectorize() : options.vectorize != 0;
  env.topk = options.topk;
  env.no_exchange = options.no_exchange;
  env.fault_attempt = options.fault_attempt;
  env.replan_drift_threshold = options.replan_drift_threshold;
  // Injector and recovery state live on this frame: the root is destroyed
  // (joining every Exchange worker) before they go out of scope.
  const ExecFaultPolicy& fault_policy =
      options.exec_faults.enabled() ? options.exec_faults : EnvExecFaults();
  ExecFaultInjector injector(fault_policy);
  if (fault_policy.enabled()) env.exec_faults = &injector;
  ExecFaultStats fault_stats;
  if (options.recovery.enabled && !options.no_exchange) {
    env.recovery = &options.recovery;
    env.fault_stats = &fault_stats;
  }
  std::shared_ptr<ExecProfile> profile;
  if (options.profile != nullptr) {
    env.profile = options.profile;
  } else if (options.analyze || ForceAnalyze()) {
    profile = std::make_shared<ExecProfile>();
    env.profile = profile.get();
  }
  if (env.profile != nullptr) {
    // Per-node I/O / buffer deltas read store-shared counters, which is
    // only race-free while no Exchange worker thread runs concurrently —
    // even a dop=1 Exchange pipelines its single worker against this
    // thread, so the gate is "no Exchange anywhere", not MaxDop.
    env.profile->set_io_timed(options.no_exchange ||
                              CountOps(plan, PhysOpKind::kExchange) == 0);
  }
  OODB_ASSIGN_OR_RETURN(std::unique_ptr<ExecNode> root,
                        BuildExecNode(env, plan));
  OODB_RETURN_IF_ERROR(root->Open());
  const PhysicalOp* project = FindProject(plan);

  ExecStats stats;
  stats.batch_size = static_cast<int>(env.batch_size);
  stats.dop = options.no_exchange ? 1 : MaxDop(plan);
  // On Exchange-free pipelines this drain loop IS the pipeline root, so the
  // deterministic batch-boundary fault sites (worker kill, straggler delay)
  // fire here as worker 0; under an Exchange the workers own their batch
  // boundaries and this loop only consumes.
  const bool root_fault_sites =
      env.exec_faults != nullptr &&
      (options.no_exchange || CountOps(plan, PhysOpKind::kExchange) == 0);
  TupleBatch batch =
      BatchPool::Instance().Take(env.num_bindings(), env.batch_size);
  while (true) {
    Result<size_t> next = root->Next(&batch);
    if (!next.ok()) {
      BatchPool::Instance().Return(std::move(batch));
      return next.status();
    }
    size_t n = *next;
    if (n == 0) break;
    if (root_fault_sites) {
      ExecFaultInjector::Action act =
          injector.OnBatchBoundary(0, options.fault_attempt);
      env.clock().cpu_s += act.sim_delay_s;
      if (act.sleep_ms > 0.0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(act.sleep_ms));
      }
      if (!act.status.ok()) {
        BatchPool::Instance().Return(std::move(batch));
        return act.status;
      }
    }
    stats.rows += static_cast<int64_t>(n);
    if (options.governor != nullptr) {
      OODB_RETURN_IF_ERROR(
          options.governor->ChargeRows(static_cast<int64_t>(n)));
    }
    if (project != nullptr) {
      // active_ref: the root batch may carry a selection vector (columnar
      // mode); n counts live rows and sampling must follow the same list.
      for (size_t i = 0;
           i < n && static_cast<int>(stats.sample_rows.size()) <
                        options.sample_limit;
           ++i) {
        std::vector<Value> row;
        for (const ScalarExprPtr& e : project->emit) {
          OODB_ASSIGN_OR_RETURN(Value v,
                                EvalExpr(*e, batch.active_ref(i), *ctx));
          row.push_back(std::move(v));
        }
        stats.sample_rows.push_back(std::move(row));
      }
    }
  }
  root->Close();
  BatchPool::Instance().Return(std::move(batch));

  stats.sim_io_s = store->clock().io_s;
  stats.sim_cpu_s = store->clock().cpu_s;
  stats.pages_read = store->disk().reads();
  stats.seq_reads = store->disk().seq_reads();
  stats.random_reads = store->disk().random_reads();
  stats.buffer_hits = store->buffer().hits();
  if (options.governor != nullptr) {
    stats.governor = options.governor->stats();
  }
  stats.partitions_retried =
      fault_stats.partitions_retried.load(std::memory_order_relaxed);
  stats.partitions_speculated =
      fault_stats.partitions_speculated.load(std::memory_order_relaxed);
  stats.faults_injected = injector.injected();
  stats.profile = std::move(profile);
  return stats;
}

}  // namespace oodb
