// Unit tests for the static verifier (src/verify/): clean IRs pass, the
// expression type/scoping checks catch malformed trees, fused-filter
// conjunct drift is detected, and the optimizer/session wiring surfaces
// violations without caching flagged plans. The seeded-corruption matrix
// lives in verify_mutation_test.cc.
#include "src/verify/verify.h"

#include <gtest/gtest.h>

#include "src/physical/enforcers.h"
#include "src/physical/impl_rules.h"
#include "src/rules/transformations.h"
#include "src/volcano/search.h"
#include "tests/test_util.h"

namespace oodb {
namespace {

using testing::MustOptimize;

class VerifyTest : public ::testing::Test {
 protected:
  VerifyTest() : db_(MakePaperCatalog()) { ctx_.catalog = &db_.catalog; }

  PaperDb db_;
  QueryContext ctx_;
};

// --- logical expression verification ---

TEST_F(VerifyTest, CleanSelectPasses) {
  BindingId c = ctx_.bindings.AddGet("c", db_.city);
  LogicalExprPtr tree = LogicalExpr::Make(
      LogicalOp::Select(ScalarExpr::AttrEqStr(c, db_.city_name, "Dallas")),
      {LogicalExpr::Make(
          LogicalOp::Get(CollectionId::Set("Cities", db_.city), c))});
  VerifyReport report = VerifyExprReport(*tree, ctx_);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_TRUE(VerifyExpr(*tree, ctx_).ok());
}

TEST_F(VerifyTest, OutOfScopePredicateIsFlagged) {
  BindingId c = ctx_.bindings.AddGet("c", db_.city);
  BindingId other = ctx_.bindings.AddGet("other", db_.person);
  // Predicate reads `other`, but only `c` is in scope below the Select.
  LogicalExprPtr tree = LogicalExpr::Make(
      LogicalOp::Select(ScalarExpr::AttrEqStr(other, db_.person_name, "Joe")),
      {LogicalExpr::Make(
          LogicalOp::Get(CollectionId::Set("Cities", db_.city), c))});
  VerifyReport report = VerifyExprReport(*tree, ctx_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(invariant::kExprScope)) << report.ToString();
  // LogicalOp::Validate catches the same drift at the operator level.
  EXPECT_TRUE(report.Has(invariant::kLogicalOp)) << report.ToString();
  EXPECT_FALSE(VerifyExpr(*tree, ctx_).ok());
}

TEST_F(VerifyTest, CmpTypeMismatchIsFlagged) {
  BindingId c = ctx_.bindings.AddGet("c", db_.city);
  // city.name is a string; comparing it to an integer cannot be right.
  LogicalExprPtr tree = LogicalExpr::Make(
      LogicalOp::Select(ScalarExpr::Cmp(CmpOp::kEq,
                                        ScalarExpr::Attr(c, db_.city_name),
                                        ScalarExpr::Const(Value::Int(7)))),
      {LogicalExpr::Make(
          LogicalOp::Get(CollectionId::Set("Cities", db_.city), c))});
  VerifyReport report = VerifyExprReport(*tree, ctx_);
  EXPECT_TRUE(report.Has(invariant::kExprCmpType)) << report.ToString();
}

TEST_F(VerifyTest, UnknownFieldIsFlagged) {
  BindingId c = ctx_.bindings.AddGet("c", db_.city);
  LogicalExprPtr tree = LogicalExpr::Make(
      LogicalOp::Select(ScalarExpr::AttrEqInt(c, FieldId{991}, 7)),
      {LogicalExpr::Make(
          LogicalOp::Get(CollectionId::Set("Cities", db_.city), c))});
  VerifyReport report = VerifyExprReport(*tree, ctx_);
  EXPECT_TRUE(report.Has(invariant::kExprField)) << report.ToString();
}

TEST_F(VerifyTest, SetValuedFieldInScalarPositionIsFlagged) {
  BindingId t = ctx_.bindings.AddGet("t", db_.task);
  // task.team_members is a set of references; it has no scalar value.
  LogicalExprPtr tree = LogicalExpr::Make(
      LogicalOp::Select(ScalarExpr::AttrEqInt(t, db_.task_team_members, 1)),
      {LogicalExpr::Make(
          LogicalOp::Get(CollectionId::Set("Tasks", db_.task), t))});
  VerifyReport report = VerifyExprReport(*tree, ctx_);
  EXPECT_TRUE(report.Has(invariant::kExprSetField)) << report.ToString();
}

TEST_F(VerifyTest, MatTargetTypeMismatchIsFlagged) {
  BindingId c = ctx_.bindings.AddGet("c", db_.city);
  // city.mayor references a Person; binding the target as a Task lies.
  BindingId m = ctx_.bindings.AddMat("c.mayor", db_.task, c, db_.city_mayor);
  LogicalExprPtr tree = LogicalExpr::Make(
      LogicalOp::Mat(c, db_.city_mayor, m),
      {LogicalExpr::Make(
          LogicalOp::Get(CollectionId::Set("Cities", db_.city), c))});
  VerifyReport report = VerifyExprReport(*tree, ctx_);
  EXPECT_TRUE(report.Has(invariant::kLogicalOp)) << report.ToString();
}

TEST_F(VerifyTest, TruthyConstantPredicateIsAccepted) {
  BindingId c = ctx_.bindings.AddGet("c", db_.city);
  // Cross joins carry a constant `1` predicate; boolean position accepts it.
  LogicalExprPtr tree = LogicalExpr::Make(
      LogicalOp::Select(ScalarExpr::Const(Value::Int(1))),
      {LogicalExpr::Make(
          LogicalOp::Get(CollectionId::Set("Cities", db_.city), c))});
  VerifyReport report = VerifyExprReport(*tree, ctx_);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// --- report plumbing ---

TEST_F(VerifyTest, ReportToStatusCarriesFirstViolationAndCount) {
  VerifyReport report;
  EXPECT_TRUE(report.ToStatus().ok());
  report.Add(invariant::kPlanSort, "Sort/File Scan", "first");
  report.Add(invariant::kPlanScope, "Sort", "second");
  Status st = report.ToStatus();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("[plan-sort-not-established]"),
            std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("Sort/File Scan"), std::string::npos);
  EXPECT_NE(st.message().find("(+1 more)"), std::string::npos);
  EXPECT_TRUE(report.Has(invariant::kPlanSort));
  EXPECT_FALSE(report.Has(invariant::kPlanExchange));
}

// --- fused-filter conjunct preservation ---

TEST_F(VerifyTest, FusedConjunctsExactAndReorderedPass) {
  BindingId c = ctx_.bindings.AddGet("c", db_.city);
  ScalarExprPtr a = ScalarExpr::AttrEqStr(c, db_.city_name, "Dallas");
  ScalarExprPtr b = ScalarExpr::AttrCmpInt(c, db_.city_population, CmpOp::kGt,
                                           100);
  EXPECT_TRUE(
      VerifyFusedConjuncts({a, b}, ScalarExpr::And({a, b})).ok());
  // Fusion may reorder conjuncts; only the multiset must survive.
  EXPECT_TRUE(
      VerifyFusedConjuncts({a, b}, ScalarExpr::And({b, a})).ok());
}

TEST_F(VerifyTest, FusedConjunctDropAndRewriteAreFlagged) {
  BindingId c = ctx_.bindings.AddGet("c", db_.city);
  ScalarExprPtr a = ScalarExpr::AttrEqStr(c, db_.city_name, "Dallas");
  ScalarExprPtr b = ScalarExpr::AttrCmpInt(c, db_.city_population, CmpOp::kGt,
                                           100);
  ScalarExprPtr rewritten = ScalarExpr::AttrCmpInt(c, db_.city_population,
                                                   CmpOp::kGe, 100);
  Status dropped = VerifyFusedConjuncts({a, b}, a);
  ASSERT_FALSE(dropped.ok());
  EXPECT_NE(dropped.message().find("plan-fusion-conjunct-drift"),
            std::string::npos)
      << dropped.message();
  Status changed = VerifyFusedConjuncts({a, b}, ScalarExpr::And({a, rewritten}));
  EXPECT_FALSE(changed.ok());
}

// --- memo + plan verification over real optimizations ---

TEST_F(VerifyTest, PaperQueryMemosAndPlansVerifyClean) {
  for (int n = 1; n <= 4; ++n) {
    QueryContext ctx;
    ctx.catalog = &db_.catalog;
    Result<LogicalExprPtr> logical = BuildPaperQuery(n, db_, &ctx);
    ASSERT_TRUE(logical.ok()) << logical.status();
    CostModel cm{CostModelOptions{}};
    OptimizerOptions opts;
    SearchEngine engine(&ctx, &cm, &opts);
    for (auto& rule : MakeDefaultTransformations()) {
      engine.AddTransformation(std::move(rule));
    }
    for (auto& rule : MakeDefaultImplRules()) {
      engine.AddImplRule(std::move(rule));
    }
    for (auto& enf : MakeDefaultEnforcers()) {
      engine.AddEnforcer(std::move(enf));
    }
    SearchStats stats;
    Result<PlanNodePtr> plan = engine.Optimize(**logical, PhysProps{}, &stats);
    ASSERT_TRUE(plan.ok()) << plan.status();
    VerifyReport memo_report = VerifyMemoReport(engine.memo());
    EXPECT_TRUE(memo_report.ok())
        << "query " << n << " memo:\n" << memo_report.ToString();
    VerifyReport plan_report = VerifyPlanReport(**plan, ctx);
    EXPECT_TRUE(plan_report.ok())
        << "query " << n << " plan:\n" << plan_report.ToString();
  }
}

TEST_F(VerifyTest, OptimizerRecordsVerificationInStats) {
  QueryContext ctx;
  ctx.catalog = &db_.catalog;
  OptimizerOptions opts;
  opts.verify_plans = true;
  OptimizedQuery q = MustOptimize(1, db_, &ctx, opts);
  EXPECT_TRUE(q.stats.verified);
  EXPECT_TRUE(q.stats.verify_error.empty()) << q.stats.verify_error;
}

TEST_F(VerifyTest, OptimizerSkipsVerificationWhenDisabled) {
  QueryContext ctx;
  ctx.catalog = &db_.catalog;
  Result<LogicalExprPtr> logical = BuildPaperQuery(1, db_, &ctx);
  ASSERT_TRUE(logical.ok());
  OptimizerOptions opts;
  opts.verify_plans = false;
  Optimizer opt(&db_.catalog, std::move(opts));
  Result<OptimizedQuery> q = opt.Optimize(**logical, &ctx);
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_FALSE(q->stats.verified);
  EXPECT_TRUE(q->stats.verify_error.empty());
}

// Regression for the greedy planner's final-projection bugs: its root
// Alg-Project used to carry the whole chain scope (instead of the emit
// expressions') and its catch-up assembly emitted steps in binding-id order
// without loading intermediate chain objects. The verifier now holds the
// greedy baseline to the same invariants as the Volcano search.
TEST_F(VerifyTest, GreedyPlansVerifyClean) {
  for (int n = 1; n <= 4; ++n) {
    QueryContext ctx;
    ctx.catalog = &db_.catalog;
    Result<LogicalExprPtr> logical = BuildPaperQuery(n, db_, &ctx);
    ASSERT_TRUE(logical.ok()) << logical.status();
    GreedyOptimizer greedy(&db_.catalog, CostModelOptions{});
    Result<OptimizedQuery> q = greedy.Optimize(**logical, &ctx);
    ASSERT_TRUE(q.ok()) << "query " << n << ": " << q.status();
    VerifyReport report = VerifyPlanReport(*q->plan, ctx);
    EXPECT_TRUE(report.ok())
        << "greedy query " << n << ":\n" << report.ToString() << "\n"
        << PrintPlan(*q->plan, ctx);
  }
}

}  // namespace
}  // namespace oodb
