// Differential fuzzing: randomly generated ZQL queries are (a) evaluated
// by the reference interpreter directly on the logical algebra, and (b)
// optimized — under a randomly chosen rule configuration — and executed.
// The result multisets must match exactly. This exercises the parser,
// simplification, every transformation/implementation rule, the property
// machinery, and every execution operator against ground truth.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/exec/reference.h"
#include "tests/test_util.h"

namespace oodb {
namespace {

constexpr double kScale = 0.02;

/// Random ZQL query generator over the paper schema. Generates queries
/// that are guaranteed to type-check; value pools are aligned with the
/// data generator so predicates have plausible hit rates.
class QueryGen {
 public:
  explicit QueryGen(uint64_t seed) : rng_(seed) {}

  std::string Generate() {
    ranges_.clear();
    conjuncts_.clear();
    selects_.clear();

    // Root range.
    int root = static_cast<int>(rng_.Uniform(4));
    switch (root) {
      case 0:
        AddRange("Employee", "e", "Employees");
        break;
      case 1:
        AddRange("City", "c", "Cities");
        break;
      case 2:
        AddRange("Task", "t", "Tasks");
        break;
      default:
        AddRange("Department", "d", "Department");
        break;
    }

    // Optionally a second, joinable range.
    if (rng_.Bernoulli(0.4)) {
      if (HasVar("e") && !HasVar("d")) {
        AddRange("Department", "d", "Department");
        conjuncts_.push_back("e.dept == d");
      } else if (HasVar("c")) {
        AddRange("Country", "n", "Country");
        conjuncts_.push_back("c.country == n");
      } else if (HasVar("d")) {
        AddRange("Employee", "e", "Employees");
        conjuncts_.push_back("e.dept == d");
      }
    }
    // Optionally unnest task members.
    if (HasVar("t") && rng_.Bernoulli(0.6)) {
      ranges_.push_back("Employee m IN t.team_members");
      vars_ += 'm';
      if (rng_.Bernoulli(0.5)) {
        conjuncts_.push_back(std::string("m.name == \"") + EmpName() + "\"");
      }
    }

    // Per-variable scalar predicates and projections.
    if (HasVar("e")) {
      MaybePred({"e.age >= " + Int(20, 60), "e.age < " + Int(30, 70),
                 "e.name == \"" + EmpName() + "\"",
                 "e.salary >= " + Int(40000, 120000) + ".0"});
      MaybeSelect({"e.name", "e.age", "e.dept.name", "e.job.name"});
    }
    if (HasVar("c")) {
      MaybePred({"c.population >= " + Int(20000, 900000),
                 "c.mayor.name == \"" + PersonName() + "\"",
                 "c.country.name == \"Country" + Int(0, 2) + "\""});
      MaybeSelect({"c.name", "c.population", "c.mayor.name",
                   "c.country.name"});
    }
    if (HasVar("t")) {
      MaybePred({"t.time == " + Int(1, 12), "t.time >= " + Int(3, 10)});
      MaybeSelect({"t.name", "t.time"});
    }
    if (HasVar("d")) {
      MaybePred({"d.floor == " + Int(1, 10), "d.floor <= " + Int(2, 8),
                 "d.plant.location == \"Dallas\""});
      MaybeSelect({"d.name", "d.floor", "d.plant.location"});
    }
    if (HasVar("m")) {
      MaybeSelect({"m.name", "m.age"});
    }
    if (HasVar("n")) {
      MaybeSelect({"n.name"});
    }
    if (selects_.empty()) selects_.push_back(FirstVarPath());

    // Exercise the argument-transformation rules: negate a conjunct or
    // merge two into a disjunction.
    if (!conjuncts_.empty() && rng_.Bernoulli(0.3)) {
      size_t i = rng_.Uniform(conjuncts_.size());
      conjuncts_[i] = "!(" + conjuncts_[i] + ")";
    }
    if (conjuncts_.size() >= 2 && rng_.Bernoulli(0.3)) {
      std::string merged =
          "(" + conjuncts_[conjuncts_.size() - 2] + " || " +
          conjuncts_.back() + ")";
      conjuncts_.pop_back();
      conjuncts_.back() = std::move(merged);
    }

    std::string q = "SELECT " + ::oodb::Join(selects_, ", ") + " FROM " +
                    ::oodb::Join(ranges_, ", ");
    if (!conjuncts_.empty()) q += " WHERE " + ::oodb::Join(conjuncts_, " && ");
    if (rng_.Bernoulli(0.25)) {
      if (HasVar("e")) q += " ORDER BY e.age";
      else if (HasVar("c")) q += " ORDER BY c.population";
      else if (HasVar("t")) q += " ORDER BY t.time";
      else if (HasVar("d")) q += " ORDER BY d.floor";
    }
    return q + ";";
  }

  /// A random rule-ablation configuration.
  OptimizerOptions RandomConfig() {
    static const char* kToggles[] = {
        kRuleJoinCommute,  kRuleJoinAssoc,        kRuleMatToJoin,
        kRuleMatMatCommute, kRuleSelectMatCommute, kRuleSelectSplit,
        kRuleSelectJoinPush, kRuleSelectJoinAbsorb, kImplIndexScan,
        kImplHybridHashJoin, kImplPointerJoin,
    };
    OptimizerOptions opts;
    for (const char* rule : kToggles) {
      if (rng_.Bernoulli(0.25)) opts.disabled_rules.push_back(rule);
    }
    if (rng_.Bernoulli(0.2)) opts.cost.assembly_window = 1;
    if (rng_.Bernoulli(0.2)) opts.enable_warm_start_assembly = true;
    if (rng_.Bernoulli(0.2)) opts.enable_merge_join = true;
    if (rng_.Bernoulli(0.3)) opts.enable_pruning = true;
    // Every fuzzed configuration doubles as a verifier false-positive probe.
    opts.verify_plans = true;
    return opts;
  }

 private:
  void AddRange(const char* type, const char* var, const char* coll) {
    ranges_.push_back(std::string(type) + " " + var + " IN " + coll);
    vars_ += var;
  }
  bool HasVar(const char* v) const {
    return vars_.find(v) != std::string::npos;
  }
  void MaybePred(std::vector<std::string> options) {
    if (rng_.Bernoulli(0.7)) {
      conjuncts_.push_back(options[rng_.Uniform(options.size())]);
    }
  }
  void MaybeSelect(std::vector<std::string> options) {
    if (rng_.Bernoulli(0.8)) {
      selects_.push_back(options[rng_.Uniform(options.size())]);
    }
  }
  std::string Int(int lo, int hi) {
    return std::to_string(rng_.UniformRange(lo, hi));
  }
  std::string EmpName() {
    int64_t k = rng_.UniformRange(0, 9);
    return k == 0 ? "Fred" : "E" + std::to_string(k);
  }
  std::string PersonName() {
    int64_t k = rng_.UniformRange(0, 9);
    return k == 0 ? "Joe" : "P" + std::to_string(k);
  }
  std::string FirstVarPath() {
    char v = vars_[0];
    return std::string(1, v) + ".name";
  }

  Rng rng_;
  std::string vars_;
  std::vector<std::string> ranges_;
  std::vector<std::string> conjuncts_;
  std::vector<std::string> selects_;
};

class FuzzTest : public ::testing::TestWithParam<int> {
 protected:
  static PaperDb* db_;
  static ObjectStore* store_;

  static void SetUpTestSuite() {
    db_ = new PaperDb(MakePaperCatalog(kScale));
    store_ = new ObjectStore(&db_->catalog);
    GenOptions gen;
    gen.num_plants = 20;
    auto r = GeneratePaperData(*db_, store_, gen);
    ASSERT_TRUE(r.ok()) << r.status();
  }
  static void TearDownTestSuite() {
    delete store_;
    delete db_;
  }

  static std::vector<std::string> SortedRows(
      const std::vector<std::vector<Value>>& rows) {
    std::vector<std::string> out;
    for (const std::vector<Value>& row : rows) {
      std::string s;
      for (const Value& v : row) {
        s += v.ToString();
        s += '|';
      }
      out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end());
    return out;
  }
};

PaperDb* FuzzTest::db_ = nullptr;
ObjectStore* FuzzTest::store_ = nullptr;

TEST_P(FuzzTest, OptimizedPlanMatchesReferenceSemantics) {
  QueryGen gen(0x9d5f + static_cast<uint64_t>(GetParam()) * 7919);
  std::string text = gen.Generate();
  SCOPED_TRACE(text);

  QueryContext ctx;
  ctx.catalog = &db_->catalog;
  SortSpec order;
  auto logical = ParseAndSimplify(text, &ctx, &order);
  ASSERT_TRUE(logical.ok()) << logical.status();

  // Ground truth: direct interpretation of the logical algebra (order-
  // insensitive — results are compared as sorted multisets).
  auto reference = EvaluateReference(**logical, store_, ctx);
  ASSERT_TRUE(reference.ok()) << reference.status();

  // Optimized plan under a random rule configuration.
  OptimizerOptions opts = gen.RandomConfig();
  std::string config;
  for (const std::string& d : opts.disabled_rules) config += d + " ";
  SCOPED_TRACE("disabled: " + config);
  PhysProps required;
  required.sort = order;
  Optimizer opt(&db_->catalog, opts);
  auto planned = opt.Optimize(**logical, &ctx, required);
  ASSERT_TRUE(planned.ok()) << planned.status();
  EXPECT_TRUE(planned->stats.verify_error.empty())
      << "verifier flagged the winning plan:\n"
      << planned->stats.verify_error << "\nplan:\n"
      << PrintPlan(*planned->plan, ctx);

  ExecOptions eo;
  eo.sample_limit = 1 << 22;
  auto stats = ExecutePlan(*planned->plan, store_, &ctx, eo);
  ASSERT_TRUE(stats.ok()) << stats.status() << "\nplan:\n"
                          << PrintPlan(*planned->plan, ctx);

  EXPECT_EQ(stats->rows, static_cast<int64_t>(reference->rows.size()));
  EXPECT_EQ(SortedRows(stats->sample_rows), SortedRows(reference->rows))
      << "plan:\n"
      << PrintPlan(*planned->plan, ctx);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 150));

// Robustness sweep: the same generated queries run under a random fault
// policy and random tight budgets. Every outcome must be either OK with
// reference-identical rows, or one of the governor/fault status codes —
// never a crash, never an untyped error.
TEST_P(FuzzTest, FaultsAndBudgetsYieldOnlyTypedOutcomes) {
  QueryGen gen(0x7a11 + static_cast<uint64_t>(GetParam()) * 104729);
  std::string text = gen.Generate();
  SCOPED_TRACE(text);

  QueryContext ctx;
  ctx.catalog = &db_->catalog;
  SortSpec order;
  auto logical = ParseAndSimplify(text, &ctx, &order);
  ASSERT_TRUE(logical.ok()) << logical.status();

  // No-fault ground truth first (uncharged reads bypass the injector, but
  // the policy is installed only after this completes anyway).
  auto reference = EvaluateReference(**logical, store_, ctx);
  ASSERT_TRUE(reference.ok()) << reference.status();

  Rng rng(0xfa57 + static_cast<uint64_t>(GetParam()) * 31337);
  GovernorOptions gov;
  if (rng.Bernoulli(0.5)) gov.max_memo_mexprs = 1 + rng.Uniform(200);
  if (rng.Bernoulli(0.5)) gov.max_exec_rows = 1 + rng.Uniform(500);
  if (rng.Bernoulli(0.5)) gov.max_exec_pages = 1 + rng.Uniform(100);
  if (rng.Bernoulli(0.3)) gov.max_tracked_bytes = 1 + rng.Uniform(4096);
  if (rng.Bernoulli(0.3)) gov.max_phys_alternatives = 1 + rng.Uniform(100);
  gov.degrade_to_greedy = false;  // trips must surface as typed errors

  FaultPolicy faults;
  faults.seed = 0xbadd + static_cast<uint64_t>(GetParam());
  if (rng.Bernoulli(0.5)) faults.fail_every_nth_read = 1 + rng.Uniform(40);
  if (rng.Bernoulli(0.5)) faults.fail_probability = 0.05;
  store_->SetFaultPolicy(faults);

  QueryGovernor governor(gov);
  OptimizerOptions opts = gen.RandomConfig();
  opts.governor = gov.enabled() ? &governor : nullptr;
  PhysProps required;
  required.sort = order;
  Optimizer opt(&db_->catalog, opts);
  auto planned = opt.Optimize(**logical, &ctx, required);

  if (!planned.ok()) {
    store_->SetFaultPolicy(FaultPolicy{});  // restore for later tests
    EXPECT_TRUE(IsGovernorStatus(planned.status().code()))
        << planned.status();
    return;
  }
  ExecOptions eo;
  eo.sample_limit = 1 << 22;
  eo.governor = opts.governor;
  auto stats = ExecutePlan(*planned->plan, store_, &ctx, eo);
  store_->SetFaultPolicy(FaultPolicy{});  // restore for later tests

  if (!stats.ok()) {
    EXPECT_TRUE(IsGovernorStatus(stats.status().code())) << stats.status();
    return;
  }
  EXPECT_EQ(stats->rows, static_cast<int64_t>(reference->rows.size()));
  EXPECT_EQ(SortedRows(stats->sample_rows), SortedRows(reference->rows))
      << "plan:\n"
      << PrintPlan(*planned->plan, ctx);
}

}  // namespace
}  // namespace oodb
