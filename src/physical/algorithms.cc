#include "src/physical/algorithms.h"

#include <algorithm>
#include <cmath>

namespace oodb {

Cost FileScanCost(const CostModel& cm, const Catalog& catalog,
                  const CollectionInfo& coll) {
  double card = static_cast<double>(coll.cardinality);
  double pages = cm.PagesFor(catalog, coll.id.type, card);
  Cost c = cm.SeqRead(pages);
  c += Cost::Cpu(card * cm.opts().cpu_scan_tuple_s);
  return c;
}

Cost IndexScanCost(const CostModel& cm, double matches, bool clustered,
                   double residual_conjuncts, const Catalog& catalog,
                   TypeId root_type) {
  Cost c = Cost::Cpu(cm.opts().index_probe_s);
  c += Cost::Cpu(matches * cm.opts().index_leaf_s);
  if (clustered) {
    c += cm.SeqRead(cm.PagesFor(catalog, root_type, matches));
  } else {
    c += cm.RandomRead(matches);
  }
  c += Cost::Cpu(matches * residual_conjuncts * cm.opts().cpu_pred_s);
  return c;
}

Cost FilterCost(const CostModel& cm, double in_card, double conjuncts) {
  return Cost::Cpu(in_card * std::max(1.0, conjuncts) * cm.opts().cpu_pred_s);
}

Cost HybridHashJoinCost(const CostModel& cm, double build_card,
                        double build_bytes, double probe_card,
                        double probe_bytes) {
  Cost c = cm.HashJoinCpu(build_card, probe_card);
  c += cm.HashJoinOverflowIo(build_card * build_bytes, probe_card * probe_bytes);
  return c;
}

Cost AssemblyCost(const CostModel& cm, const Catalog& catalog,
                  const BindingTable& bindings, double in_card,
                  const std::vector<MatStep>& steps, int window,
                  bool warm_start) {
  if (window <= 0) window = cm.opts().assembly_window;
  Cost c;
  for (const MatStep& step : steps) {
    TypeId t = bindings.def(step.target).type;
    c += Cost::Cpu(in_card * cm.opts().cpu_deref_s);
    if (warm_start && catalog.TypeCardinality(t).has_value()) {
      // Warm-start: sequentially pre-scan the referenced population into
      // memory, then resolve references as hash lookups.
      // References then resolve through an in-memory OID map; the per-
      // reference lookup is covered by the cpu_deref charge above.
      double population = static_cast<double>(*catalog.TypeCardinality(t));
      c += cm.SeqRead(cm.PagesFor(catalog, t, population));
      c += Cost::Cpu(population * cm.opts().cpu_hash_build_s);
    } else {
      c += cm.AssemblyIo(catalog, t, in_card, window);
    }
  }
  return c;
}

Cost PointerJoinCost(const CostModel& cm, const Catalog& catalog,
                     double left_card, TypeId target_type) {
  double faults = left_card;
  if (std::optional<int64_t> population = catalog.TypeCardinality(target_type)) {
    faults = std::min(faults, static_cast<double>(*population));
  }
  Cost c = cm.RandomRead(faults);
  c += Cost::Cpu(left_card * cm.opts().cpu_deref_s);
  return c;
}

Cost AlgProjectCost(const CostModel& cm, double card, double out_bytes) {
  return Cost::Cpu(card * (cm.opts().cpu_scan_tuple_s +
                           out_bytes * cm.opts().cpu_copy_byte_s));
}

Cost AlgUnnestCost(const CostModel& cm, double out_card) {
  return Cost::Cpu(out_card * cm.opts().cpu_unnest_s);
}

Cost HashSetOpCost(const CostModel& cm, double left_card, double left_bytes,
                   double right_card, double right_bytes) {
  Cost c = cm.HashJoinCpu(left_card, right_card);
  c += cm.HashJoinOverflowIo(left_card * left_bytes, right_card * right_bytes);
  return c;
}

Cost SortCost(const CostModel& cm, double card, double bytes) {
  double n = std::max(card, 2.0);
  Cost c = Cost::Cpu(n * std::log2(n) * cm.opts().cpu_hash_probe_s);
  double total_bytes = card * bytes;
  if (total_bytes > cm.opts().memory_bytes) {
    c += cm.SeqRead(2.0 * total_bytes / cm.opts().page_size);
  }
  return c;
}

Cost PartialSortCost(const CostModel& cm, double card, double bytes,
                     double distinct_prefix) {
  // The input arrives sorted on a key prefix: only rows within a run of
  // equal prefix values need ordering, so the comparison count drops from
  // n·log2(n) to n·log2(n/runs). Runs are emitted as they complete, so the
  // external-merge I/O term applies per run, i.e. effectively never.
  double n = std::max(card, 2.0);
  double runs = std::max(1.0, std::min(distinct_prefix, n));
  double run_len = std::max(n / runs, 2.0);
  Cost c = Cost::Cpu(n * std::log2(run_len) * cm.opts().cpu_hash_probe_s);
  double run_bytes = run_len * bytes;
  if (run_bytes > cm.opts().memory_bytes) {
    c += cm.SeqRead(2.0 * (card * bytes) / cm.opts().page_size);
  }
  return c;
}

Cost TopKCost(const CostModel& cm, double card, int64_t k, double presorted) {
  double n = std::max(card, 1.0);
  double kk = std::max(1.0, std::min(static_cast<double>(k), n));
  if (presorted > 0.0) {
    // Input already fully sorted: a streaming cutoff after k rows.
    return Cost::Cpu(kk * cm.opts().cpu_pred_s);
  }
  // Bounded heap of k entries: every row pays a key comparison against the
  // current bound; the expected number of heap updates over a random
  // permutation is k·(1 + ln(n/k)) (the harmonic record bound), each a
  // log2(k) sift.
  double updates = kk * (1.0 + std::log(std::max(1.0, n / kk)));
  Cost c = Cost::Cpu(n * cm.opts().cpu_pred_s);
  c += Cost::Cpu(updates * std::log2(kk + 1.0) * cm.opts().cpu_hash_probe_s);
  return c;
}

Cost NestedLoopsCost(const CostModel& cm, double left_card, double left_bytes,
                     double right_card) {
  Cost c = Cost::Cpu(left_card * cm.opts().cpu_scan_tuple_s);
  c += Cost::Cpu(left_card * right_card * cm.opts().cpu_pred_s);
  double bytes = left_card * left_bytes;
  if (bytes > cm.opts().memory_bytes) {
    // Spilled fraction re-read once per probe pass (block nested loops).
    double passes = right_card > 0 ? 1.0 : 0.0;
    c += cm.SeqRead(passes * (bytes - cm.opts().memory_bytes) /
                    cm.opts().page_size);
  }
  return c;
}

Cost MergeJoinCost(const CostModel& cm, double left_card, double right_card) {
  // Merging sorted streams is cheaper per tuple than hashing.
  return Cost::Cpu((left_card + right_card) * cm.opts().cpu_pred_s);
}

Cost BatchOverheadCpu(const CostModel& cm, double card) {
  double batch = static_cast<double>(std::max(1, cm.opts().exec_batch_size));
  return Cost::Cpu(std::ceil(card / batch) * cm.opts().cpu_batch_overhead_s);
}

Cost ExchangeCost(const CostModel& cm, double out_card, int dop) {
  Cost c = Cost::Cpu(cm.opts().exchange_startup_s * static_cast<double>(dop) +
                     out_card * cm.opts().exchange_flow_tuple_s);
  c += BatchOverheadCpu(cm, out_card);
  return c;
}

Cost MergeExchangeCost(const CostModel& cm, double out_card, int dop) {
  // An order-preserving Exchange pays the plain Exchange terms plus a
  // loser-tree comparison per delivered row (log2(dop) key comparisons).
  Cost c = ExchangeCost(cm, out_card, dop);
  c += Cost::Cpu(out_card * std::log2(std::max(2, dop)) *
                 cm.opts().cpu_pred_s);
  return c;
}

}  // namespace oodb
