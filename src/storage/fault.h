// Deterministic storage fault injection. A seeded FaultPolicy on
// StoreOptions makes BufferPool / ObjectStore reads fail with a typed
// kStorageFault Status — every Nth page access, with a per-access
// probability (SplitMix64-seeded, platform-independent), or on specific
// OIDs — so the executor's Result<> propagation path can be exercised
// end-to-end: an injected fault must surface as a clean per-query error at
// the Session boundary, never a crash or a silently truncated result. The
// injector is reset together with the simulation clock, so the same seed
// over the same access sequence fails the same page/OID on every run.
#ifndef OODB_STORAGE_FAULT_H_
#define OODB_STORAGE_FAULT_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/storage/disk_model.h"
#include "src/storage/object.h"

namespace oodb {

/// Fault-injection configuration; inert by default.
struct FaultPolicy {
  /// Seed for the per-access probability draw (and any future randomized
  /// fault kinds). Two runs with the same seed and the same access sequence
  /// fail identically.
  uint64_t seed = 0;
  /// Fail every Nth charged page access (1 = every access). 0 disables.
  int64_t fail_every_nth_read = 0;
  /// Independent per-access failure probability in [0, 1). 0 disables.
  double fail_probability = 0.0;
  /// Charged reads of these OIDs fail (media error on the object's page).
  std::vector<Oid> fail_oids;

  bool enabled() const {
    return fail_every_nth_read > 0 || fail_probability > 0.0 ||
           !fail_oids.empty();
  }
};

/// Per-store injector state: a deterministic access counter plus the seeded
/// RNG. Reset() rewinds both so each cold-started query replays the same
/// fault sequence.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPolicy& policy)
      : policy_(policy), rng_(policy.seed ^ 0x5eedfa017ull) {}

  /// Called on every charged buffer-pool access, before the LRU is touched.
  Status OnPageAccess(PageId page);

  /// Called on every charged object read, before the page access.
  Status OnObjectRead(Oid oid);

  void Reset() {
    accesses_ = 0;
    rng_ = Rng(policy_.seed ^ 0x5eedfa017ull);
  }

  const FaultPolicy& policy() const { return policy_; }

 private:
  FaultPolicy policy_;
  Rng rng_;
  int64_t accesses_ = 0;
};

}  // namespace oodb

#endif  // OODB_STORAGE_FAULT_H_
