// E13 — cost-model validation by execution: optimized plans run on the
// simulated object store (scaled instance of the paper's database) and the
// *simulated* execution time — from actual page faults, seek distances, and
// per-tuple work — is compared with the optimizer's anticipated cost. The
// reproduction target is that the cost model ranks plans the same way the
// (simulated) execution does.
#include "bench/bench_util.h"

using namespace oodb;

namespace {

constexpr double kScale = 0.1;

struct RunResult {
  double estimated;
  double simulated;
  int64_t rows;
  int64_t pages;
};

RunResult Run(const PaperDb& db, ObjectStore* store, const std::string& text,
              OptimizerOptions opts) {
  QueryContext ctx;
  ctx.catalog = &db.catalog;
  auto logical = ParseAndSimplify(text, &ctx);
  if (!logical.ok()) {
    std::fprintf(stderr, "%s\n", logical.status().ToString().c_str());
    std::abort();
  }
  Optimizer opt(&db.catalog, std::move(opts));
  auto planned = opt.Optimize(**logical, &ctx);
  if (!planned.ok()) {
    std::fprintf(stderr, "%s\n", planned.status().ToString().c_str());
    std::abort();
  }
  auto stats = ExecutePlan(*planned->plan, store, &ctx);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    std::abort();
  }
  return {planned->cost.total(), stats->sim_total_s(), stats->rows,
          stats->pages_read};
}

}  // namespace

int main() {
  PaperDb db = MakePaperCatalog(kScale);
  // A modest buffer pool (1 MB) and a physically plausible plant population
  // keep buffer-hit effects realistic: the optimizer does not know the
  // plant count (no extent) and the buffer cannot hold everything.
  StoreOptions store_opts;
  store_opts.buffer_pages = 256;
  ObjectStore store(&db.catalog, store_opts);
  GenOptions gen;
  gen.num_plants = 5000;
  auto data = GeneratePaperData(db, &store, gen);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("Instance: scale %.2f of Table 1 (%lld objects)\n", kScale,
              static_cast<long long>(store.num_objects()));

  struct Case {
    const char* label;
    const char* query;
    OptimizerOptions opts;
  };
  OptimizerOptions all;
  OptimizerOptions no_idx;
  no_idx.disabled_rules = {kImplIndexScan};
  OptimizerOptions no_join;
  no_join.disabled_rules = {kRuleJoinCommute};
  OptimizerOptions w1 = no_join;
  w1.cost.assembly_window = 1;

  // Query 4 uses a completion time that exists at this scale (1..60).
  const char* q4 =
      "SELECT t.name FROM Task t IN Tasks, Employee e IN t.team_members "
      "WHERE e.name == \"Fred\" && t.time == 7;";

  Case cases[] = {
      {"Q1 optimal (Fig 6)", kQuery1Text, all},
      {"Q1 w/o commutativity (Fig 7)", kQuery1Text, no_join},
      {"Q1 w/o window", kQuery1Text, w1},
      {"Q2 index scan (Fig 8)", kQuery2Text, all},
      {"Q2 w/o collapse (Fig 9)", kQuery2Text, no_idx},
      {"Q3 enforcer plan (Fig 10)", kQuery3Text, all},
      {"Q3 w/o collapse", kQuery3Text, no_idx},
      {"Q4 optimal (Fig 12)", q4, all},
  };

  bench::Header("Estimated vs simulated execution (cold buffer pool)");
  std::printf("%-32s %12s %12s %8s %8s %7s\n", "plan", "estimate[s]",
              "simulated[s]", "ratio", "rows", "pages");
  double prev_est = -1, prev_sim = -1;
  int inversions = 0, comparisons = 0;
  for (const Case& c : cases) {
    RunResult r = Run(db, &store, c.query, c.opts);
    std::printf("%-32s %12.2f %12.2f %8.2f %8lld %7lld\n", c.label,
                r.estimated, r.simulated, r.simulated / r.estimated,
                static_cast<long long>(r.rows),
                static_cast<long long>(r.pages));
    if (prev_est >= 0) {
      ++comparisons;
      bool est_up = r.estimated > prev_est;
      bool sim_up = r.simulated > prev_sim;
      if (est_up != sim_up) ++inversions;
    }
    prev_est = r.estimated;
    prev_sim = r.simulated;
  }
  std::printf(
      "\nPlan-ranking agreement between cost model and simulation: %d/%d "
      "adjacent orderings preserved.\n",
      comparisons - inversions, comparisons);
  std::printf(
      "(The estimate is the paper-style anticipated cost; 'simulated' "
      "charges every actual page fault\n with the same I/O constants plus "
      "per-tuple CPU. Buffer-pool hits make real runs cheaper than\n the "
      "buffer-oblivious estimate — the effect the paper says can \"only be "
      "studied in the context of\n a real, working system\".)\n"
      "(The Fig-7 pointer-chasing plan runs better than anticipated: Plant "
      "has no extent, so the\n optimizer must assume one fault per employee, "
      "while at runtime the department->plant fan-in\n bounds the distinct "
      "plants touched — precisely the paper's observation that \"additional\n"
      " cardinality information should be maintained whether or not the "
      "objects belong to a set or\n extent\".)\n");
  return 0;
}
