// The search engine: exhaustive transformation closure (exploration)
// followed by top-down, goal-directed costing driven by required physical
// property vectors — the Volcano strategy the paper relies on ("the search
// process considers only those subplans that can deliver the physical
// properties that are required by the algorithm of the containing plan").
#ifndef OODB_VOLCANO_SEARCH_H_
#define OODB_VOLCANO_SEARCH_H_

#include <memory>

#include "src/volcano/rule.h"

namespace oodb {

/// One-shot search engine: insert a query, explore, optimize. Constructed
/// per optimization by the Optimizer facade.
class SearchEngine {
 public:
  SearchEngine(QueryContext* qctx, const CostModel* cost_model,
               const OptimizerOptions* opts);

  void AddTransformation(std::unique_ptr<TransformationRule> rule);
  void AddImplRule(std::unique_ptr<ImplRule> rule);
  void AddEnforcer(std::unique_ptr<Enforcer> enforcer);

  /// Optimizes `input`, requiring `required` of the root. Stats are
  /// accumulated into `*stats`.
  Result<PlanNodePtr> Optimize(const LogicalExpr& input,
                               const PhysProps& required, SearchStats* stats);

  Memo& memo() { return memo_; }

 private:
  /// Applies transformation rules to fixpoint over the whole memo.
  Status Explore();

  Result<PlanNodePtr> OptimizeGroup(GroupId g, PhysProps required, int depth,
                                    double limit);

  QueryContext* qctx_;
  const CostModel* cost_model_;
  const OptimizerOptions* opts_;
  Memo memo_;
  OptContext octx_;
  SearchStats* stats_ = nullptr;

  std::vector<std::unique_ptr<TransformationRule>> transformations_;
  std::vector<std::unique_ptr<ImplRule>> impl_rules_;
  std::vector<std::unique_ptr<Enforcer>> enforcers_;

  /// Per-mexpr sum of child-group sizes when child-matching rules last
  /// fired; triggers re-firing after child groups grow.
  std::vector<int64_t> child_sizes_seen_;
};

}  // namespace oodb

#endif  // OODB_VOLCANO_SEARCH_H_
