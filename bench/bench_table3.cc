// E9-E11 — Query 4 (Figures 12, 13) and Table 3: cost-based optimization vs
// the greedy, ObjectStore-style use-every-index strategy, across four index
// availability configurations.
#include "bench/bench_util.h"

using namespace oodb;

namespace {

double GreedyCost(const PaperDb& db, bool print = false) {
  QueryContext ctx;
  auto logical = BuildPaperQuery(4, db, &ctx);
  GreedyOptimizer greedy(&db.catalog);
  auto r = greedy.Optimize(**logical, &ctx);
  if (!r.ok()) {
    std::fprintf(stderr, "greedy: %s\n", r.status().ToString().c_str());
    std::abort();
  }
  if (print) std::printf("%s", PrintPlan(*r->plan, ctx, true).c_str());
  return r->cost.total();
}

}  // namespace

int main() {
  PaperDb db = MakePaperCatalog();

  bench::Header("Query 4 (ZQL) — from the ObjectStore paper, slightly modified");
  std::printf("%s\n", kQuery4Text);

  bench::Header("Query 4 after simplification (paper Figure 12, top)");
  {
    QueryContext ctx;
    auto logical = BuildPaperQuery(4, db, &ctx);
    std::printf("%s", PrintLogicalTree(**logical, ctx).c_str());
  }

  bench::Header("Figure 12: optimal plan (only the time index!)");
  {
    QueryContext ctx;
    OptimizedQuery q = bench::Optimize(4, db, &ctx);
    std::printf("%s", PrintPlan(*q.plan, ctx, true).c_str());
  }

  bench::Header("Figure 13: greedy plan (uses both indexes)");
  GreedyCost(db, /*print=*/true);

  bench::Header("Table 3: Anticipated Execution Times for Query 4 [s]");
  struct Col {
    const char* label;
    bool time_idx, name_idx;
    double paper_all, paper_greedy;
  };
  Col cols[] = {
      {"None", false, false, 108, 108},
      {"Time only", true, false, 1.73, 1.73},
      {"Name only", false, true, 28.4, 28.4},
      {"Both", true, true, 1.73, 10.1},
  };
  std::printf("%-12s  %10s  %10s   |  paper: %10s %10s\n", "Indices",
              "All rules", "Greedy use", "All rules", "Greedy");
  for (const Col& col : cols) {
    (void)db.catalog.SetIndexEnabled(kIdxTasksTime, col.time_idx);
    (void)db.catalog.SetIndexEnabled(kIdxEmployeesName, col.name_idx);
    QueryContext ctx;
    OptimizedQuery all = bench::Optimize(4, db, &ctx);
    double greedy = GreedyCost(db);
    std::printf("%-12s  %10.2f  %10.2f   |  %16.2f %10.2f\n", col.label,
                all.cost.total(), greedy, col.paper_all, col.paper_greedy);
  }
  (void)db.catalog.SetIndexEnabled(kIdxTasksTime, true);
  (void)db.catalog.SetIndexEnabled(kIdxEmployeesName, true);

  std::printf(
      "\nAs in the paper: the greedy strategy matches cost-based choice "
      "until BOTH indexes exist,\nwhere greedily using the name index makes "
      "it >5x slower than the optimal single-index plan.\n");
  return 0;
}
