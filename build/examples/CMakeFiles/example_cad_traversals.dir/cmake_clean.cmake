file(REMOVE_RECURSE
  "CMakeFiles/example_cad_traversals.dir/cad_traversals.cpp.o"
  "CMakeFiles/example_cad_traversals.dir/cad_traversals.cpp.o.d"
  "example_cad_traversals"
  "example_cad_traversals.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cad_traversals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
