// Scalar (predicate/projection) expressions with *simple* arguments — the
// paper's central algebra-design decision (§2, Lesson 4): after
// simplification, expressions only touch direct fields of in-scope bindings
// (record-field access); every multi-hop dereference has been made explicit
// as a Mat operator. Expression trees are immutable and shared.
#ifndef OODB_ALGEBRA_EXPR_H_
#define OODB_ALGEBRA_EXPR_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/algebra/binding.h"
#include "src/catalog/schema.h"

namespace oodb {

/// A runtime constant.
struct Value {
  enum class Kind { kNull, kInt, kDouble, kString };
  Kind kind = Kind::kNull;
  int64_t i = 0;
  double d = 0.0;
  std::string s;

  static Value Null() { return Value{}; }
  static Value Int(int64_t v) {
    Value out;
    out.kind = Kind::kInt;
    out.i = v;
    return out;
  }
  static Value Double(double v) {
    Value out;
    out.kind = Kind::kDouble;
    out.d = v;
    return out;
  }
  static Value Str(std::string v) {
    Value out;
    out.kind = Kind::kString;
    out.s = std::move(v);
    return out;
  }

  bool operator==(const Value& o) const;
  /// Three-way comparison for ordering; kinds must match (int/double mix ok).
  int Compare(const Value& o) const;
  std::string ToString() const;
  /// Exact, collision-free encoding for hash keys (ToString rounds doubles
  /// for display; this must not). Ints and doubles encode to the same key
  /// when numerically equal, matching operator==.
  std::string KeyString() const;
  size_t Hash() const;
};

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };
const char* CmpOpName(CmpOp op);
/// kLt -> kGt etc., for operand swaps.
CmpOp ReverseCmp(CmpOp op);
/// Evaluates `a op b` given a three-way comparison result of a vs b.
bool EvalCmp(CmpOp op, int three_way);

class ScalarExpr;
using ScalarExprPtr = std::shared_ptr<const ScalarExpr>;

/// Immutable scalar expression node.
class ScalarExpr {
 public:
  enum class Kind {
    kAttr,   ///< field of an in-scope binding: b.f (scalar or single ref)
    kSelf,   ///< object identity (OID) of a binding
    kConst,  ///< literal
    kCmp,    ///< comparison of two children
    kAnd,    ///< conjunction (n-ary)
    kOr,     ///< disjunction (n-ary)
    kNot,    ///< negation
  };

  static ScalarExprPtr Attr(BindingId binding, FieldId field);
  static ScalarExprPtr Self(BindingId binding);
  static ScalarExprPtr Const(Value v);
  static ScalarExprPtr Cmp(CmpOp op, ScalarExprPtr l, ScalarExprPtr r);
  static ScalarExprPtr And(std::vector<ScalarExprPtr> children);
  static ScalarExprPtr Or(std::vector<ScalarExprPtr> children);
  static ScalarExprPtr Not(ScalarExprPtr child);

  /// Convenience: b.f == "s" / b.f == i / b.f cmp value.
  static ScalarExprPtr AttrEqStr(BindingId b, FieldId f, std::string s);
  static ScalarExprPtr AttrEqInt(BindingId b, FieldId f, int64_t v);
  static ScalarExprPtr AttrCmpInt(BindingId b, FieldId f, CmpOp op, int64_t v);
  /// b1.f == b2 (reference equality against an object's identity).
  static ScalarExprPtr RefEq(BindingId b1, FieldId f, BindingId b2);

  Kind kind() const { return kind_; }
  BindingId binding() const { return binding_; }
  FieldId field() const { return field_; }
  const Value& value() const { return value_; }
  CmpOp cmp_op() const { return cmp_op_; }
  const std::vector<ScalarExprPtr>& children() const { return children_; }

  /// All bindings this expression reads.
  BindingSet ReferencedBindings() const;

  /// Structural equality / hashing (for memo dedup of Select/Join args).
  bool Equals(const ScalarExpr& other) const;
  size_t Hash() const;

  /// Pretty-prints using binding names and field names.
  std::string ToString(const BindingTable& bindings, const Schema& schema) const;

  /// Splits a conjunctive expression into its conjuncts (flattens nested
  /// kAnd); a non-kAnd expression yields itself.
  static std::vector<ScalarExprPtr> SplitConjuncts(const ScalarExprPtr& e);

  /// Conjunction of `conjuncts` (returns single element unwrapped; must be
  /// non-empty).
  static ScalarExprPtr CombineConjuncts(std::vector<ScalarExprPtr> conjuncts);

 private:
  ScalarExpr() = default;

  Kind kind_ = Kind::kConst;
  BindingId binding_ = kInvalidBinding;
  FieldId field_ = kInvalidField;
  Value value_;
  CmpOp cmp_op_ = CmpOp::kEq;
  std::vector<ScalarExprPtr> children_;
};

/// Hash/equality helpers for ScalarExprPtr (null-safe).
size_t HashExprPtr(const ScalarExprPtr& e);
bool ExprPtrEquals(const ScalarExprPtr& a, const ScalarExprPtr& b);

}  // namespace oodb

#endif  // OODB_ALGEBRA_EXPR_H_
