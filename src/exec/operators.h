// Iterator-model (open/next/close) execution operators over the simulated
// object store — one per physical algebra operator. The module transfers
// "query execution concepts and algorithms from the Volcano query execution
// module" (the paper's future-work item 5), closing the loop so optimized
// plans can actually run.
//
// Operators are batch-at-a-time: Next() fills a caller-owned TupleBatch and
// returns the number of rows produced. A return of 0 means end of stream
// and is sticky; short non-empty batches are legal mid-stream (a selective
// filter still loops internally so it never returns an empty batch before
// EOS). Batching amortizes virtual dispatch, governor checkpoints, and
// simulated-clock updates over exec_batch_size rows, and is the unit of
// transfer through the Exchange operator's cross-thread queues.
#ifndef OODB_EXEC_OPERATORS_H_
#define OODB_EXEC_OPERATORS_H_

#include <memory>

#include "src/common/governor.h"
#include "src/exec/exec_fault.h"
#include "src/exec/tuple.h"
#include "src/storage/object_store.h"
#include "src/volcano/plan.h"

namespace oodb {

class ExecProfile;

/// The iterator interface.
class ExecNode {
 public:
  virtual ~ExecNode() = default;
  virtual Status Open() = 0;
  /// Clears `out` and fills it with up to out->capacity() rows. Returns the
  /// number of rows produced; 0 is end of stream (sticky).
  virtual Result<size_t> Next(TupleBatch* out) = 0;
  virtual void Close() = 0;
};

/// Shared state for all nodes of one executing (sub-)plan. Exchange builds
/// one ExecEnv per worker: the store/ctx/governor are shared (each
/// internally synchronized), while `cpu_clock` points at a worker-private
/// SimClock merged into the store's clock after the worker joins, and the
/// partition fields carve the driver scan into disjoint contiguous chunks.
struct ExecEnv {
  ObjectStore* store = nullptr;
  QueryContext* ctx = nullptr;
  QueryGovernor* governor = nullptr;

  /// Clock receiving operator CPU charges. Null means the store's shared
  /// clock (single-threaded execution); Exchange workers substitute a
  /// private clock so CPU accounting never races.
  SimClock* cpu_clock = nullptr;

  /// Rows per batch for every operator of this tree (the exec_batch_size
  /// knob; capacity of internal child-facing batches).
  size_t batch_size = TupleBatch::kDefaultCapacity;

  /// Columnar vectorized execution (the OODB_VECTORIZE knob): fused scans
  /// filter through dense store projections (ScanSelect), non-fused filters
  /// refine selection vectors over extracted typed columns instead of
  /// compacting, and the hash-join probe batch-hashes its key column. Off,
  /// every path is bit-identical to the row-at-a-time batch engine.
  /// Simulated costs are identical either way — vectorization changes
  /// wall-clock time only.
  bool vectorize = false;

  /// Top-k fast paths (the exec.topk knob). Off, TopKExec abandons the
  /// bounded heap and the streaming first-k cutoff for the oracle
  /// strategy — buffer every row, stable-sort, truncate — which the parity
  /// suite diffs against the fast paths row for row. Results are identical;
  /// simulated charges honestly follow the naive algorithm, so this is a
  /// testing knob, not a tuning one.
  bool topk = true;

  /// EXPLAIN ANALYZE collector (null = off, the zero-overhead default: no
  /// decorators are built and every code path is bit-identical). When set,
  /// BuildExecNode wraps each operator in a recording decorator writing
  /// into this profile; Exchange workers substitute a private profile
  /// merged at join, mirroring `cpu_clock`.
  ExecProfile* profile = nullptr;

  /// Partitioning for Exchange workers: the scan built from the plan node
  /// at address `partition_node` yields the contiguous chunk
  /// [n*w/k, n*(w+1)/k) of its n members, where w = partition_index and
  /// k = partition_count. Contiguous chunks (rather than a round-robin
  /// stride) keep each worker's reads on long same-page runs, since members
  /// are clustered in creation order. Null means no partitioning (every
  /// scan reads everything).
  const PlanNode* partition_node = nullptr;
  int partition_index = 0;
  int partition_count = 1;

  /// Exec-layer fault injection (null = off, the zero-cost default: one
  /// pointer compare per Tick). The injector lives on ExecutePlan's stack
  /// and outlives every worker of the execution.
  ExecFaultInjector* exec_faults = nullptr;
  /// Fault-site identity for the injector: the Exchange partition index
  /// (0 for serial pipelines) and the attempt number — the Session-level
  /// query attempt plus the Exchange-level partition attempt, so
  /// "attempts < N fail" policies shape transient faults at either layer.
  int fault_worker = 0;
  int fault_attempt = 0;

  /// Parallel-execution recovery knobs (null/disabled = the streaming
  /// Exchange fast path, bit-identical to the non-recoverable engine).
  const ExecRecoveryOptions* recovery = nullptr;
  /// Per-execution recovery counters, owned by ExecutePlan; updated by the
  /// Exchange recovery path. Null when recovery is off.
  ExecFaultStats* fault_stats = nullptr;

  /// Degradation-ladder "serial" step: build the Exchange node's child
  /// directly (unpartitioned, no worker threads) instead of the Exchange.
  /// The plan is otherwise executed unchanged, so a plan whose Exchange
  /// keeps faulting can run serially without re-optimization.
  bool no_exchange = false;

  /// Mid-query re-planning trigger (0 = off). When positive, the input of
  /// every pipeline breaker (hash-join build, Sort/TopK input — including
  /// an Exchange feeding one) is wrapped in a drift check that fails with
  /// kPlanDrift once the actual row count exceeds the optimizer's estimate
  /// by this factor (fired as soon as the count crosses the line, before
  /// the suffix runs) or undershoots it by the same factor at end of
  /// stream (fired at build completion). kPlanDrift is deliberately not
  /// retryable: the Session catches it, re-optimizes with measured
  /// cardinality feedback, and restarts. Checks are suppressed inside
  /// Exchange workers (partition_count > 1), where per-partition counts
  /// cannot be compared against whole-input estimates.
  double replan_drift_threshold = 0.0;

  SimClock& clock() const {
    return cpu_clock != nullptr ? *cpu_clock : store->clock();
  }
  const CostModelOptions& timing() const { return store->timing(); }
  int num_bindings() const { return ctx->bindings.size(); }

  /// Cooperative governor checkpoint, called once per operator Next() —
  /// i.e. at batch granularity. Free when ungoverned; one extra pointer
  /// compare when exec faults are not injected.
  Status Tick() const {
    if (exec_faults != nullptr) {
      OODB_RETURN_IF_ERROR(exec_faults->OnTick(fault_worker, fault_attempt));
    }
    if (governor == nullptr) return Status::OK();
    return governor->CheckExec(store->disk().reads());
  }

  /// Charges `rows` tuples buffered by a blocking operator (hash build,
  /// sort, nested-loops buffer, set ops) against the tracked-memory budget.
  Status ChargeBuffered(int64_t rows = 1) const {
    if (governor == nullptr) return Status::OK();
    return governor->ChargeTrackedBytes(rows *
                                        static_cast<int64_t>(num_bindings()) *
                                        static_cast<int64_t>(sizeof(Slot)));
  }
};

/// Adapts a batch-producing child to tuple-at-a-time consumption for
/// blocking operators (hash build, sort, set ops) and the merge join's
/// streaming cursors. Owns the child-facing batch; each Next() copies one
/// row out, so the returned tuple survives batch refills.
class BatchReader {
 public:
  BatchReader(ExecNode* child, int width, size_t batch_size)
      : child_(child), batch_(width, batch_size) {}

  /// Copies the next row into *out; returns false at end of stream.
  Result<bool> Next(Tuple* out) {
    TupleRef ref;
    OODB_ASSIGN_OR_RETURN(bool ok, NextRef(&ref));
    if (ok) out->AssignFrom(ref);
    return ok;
  }

  /// Yields a view of the next live row — valid until the following
  /// Next/NextRef call. Buffering consumers construct their owning Tuple
  /// straight from the view (one copy) instead of assigning into a scratch
  /// tuple and then copying that into the buffer (two copies per row —
  /// measurable on wide bindings; see DESIGN "Columnar execution").
  /// Selection-aware: only rows alive under the child batch's selection
  /// vector are yielded.
  Result<bool> NextRef(TupleRef* out) {
    if (pos_ >= batch_.active()) {
      if (eos_) return false;
      OODB_ASSIGN_OR_RETURN(size_t n, child_->Next(&batch_));
      pos_ = 0;
      if (n == 0) {
        eos_ = true;
        return false;
      }
    }
    *out = batch_.active_ref(pos_++);
    return true;
  }

 private:
  ExecNode* child_;
  TupleBatch batch_;
  size_t pos_ = 0;
  bool eos_ = false;
};

/// Builds one executable iterator (sub-)tree under `env`. Exposed (rather
/// than file-local) so the Exchange operator can build per-worker copies of
/// its child plan with partitioned ExecEnvs.
Result<std::unique_ptr<ExecNode>> BuildExecNode(const ExecEnv& env,
                                                const PlanNode& plan);

/// Builds an executable iterator tree from a physical plan. A non-null
/// `governor` is checked cooperatively at every operator Next() (including
/// inside blocking Open() phases, which drain their children through
/// Next()), so cancellation and deadline/budget trips surface mid-pipeline.
Result<std::unique_ptr<ExecNode>> BuildExecTree(const PlanNode& plan,
                                                ObjectStore* store,
                                                QueryContext* ctx,
                                                QueryGovernor* governor = nullptr);

}  // namespace oodb

#endif  // OODB_EXEC_OPERATORS_H_
