#include <gtest/gtest.h>

#include "src/algebra/expr.h"
#include "src/algebra/logical_op.h"
#include "src/catalog/paper_catalog.h"

namespace oodb {
namespace {

TEST(ValueTest, Kinds) {
  EXPECT_EQ(Value::Null().kind, Value::Kind::kNull);
  EXPECT_EQ(Value::Int(3).i, 3);
  EXPECT_EQ(Value::Double(2.5).d, 2.5);
  EXPECT_EQ(Value::Str("x").s, "x");
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_FALSE(Value::Int(3) == Value::Int(4));
  EXPECT_EQ(Value::Str("a"), Value::Str("a"));
  EXPECT_FALSE(Value::Str("a") == Value::Int(3));
  EXPECT_EQ(Value::Null(), Value::Null());
}

TEST(ValueTest, IntDoubleCrossEquality) {
  EXPECT_EQ(Value::Int(3), Value::Double(3.0));
  EXPECT_FALSE(Value::Int(3) == Value::Double(3.5));
}

TEST(ValueTest, Compare) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(2).Compare(Value::Int(2)), 0);
  EXPECT_GT(Value::Str("b").Compare(Value::Str("a")), 0);
  EXPECT_LT(Value::Double(1.5).Compare(Value::Int(2)), 0);
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::Str("Joe").ToString(), "\"Joe\"");
  EXPECT_EQ(Value::Null().ToString(), "null");
}

TEST(ValueTest, KeyStringExactness) {
  // Display rounds; the hash key must not.
  EXPECT_NE(Value::Double(1.25).KeyString(),
            Value::Double(1.2500001).KeyString());
  // Numerically equal int/double key identically (operator== semantics).
  EXPECT_EQ(Value::Int(3).KeyString(), Value::Double(3.0).KeyString());
  // Kind tags prevent cross-kind collisions.
  EXPECT_NE(Value::Str("3").KeyString(), Value::Int(3).KeyString());
  EXPECT_NE(Value::Null().KeyString(), Value::Str("n").KeyString());
}

TEST(ValueTest, HashDistinguishes) {
  EXPECT_NE(Value::Int(1).Hash(), Value::Int(2).Hash());
  EXPECT_EQ(Value::Str("a").Hash(), Value::Str("a").Hash());
}

TEST(CmpOpTest, Names) {
  EXPECT_STREQ(CmpOpName(CmpOp::kEq), "==");
  EXPECT_STREQ(CmpOpName(CmpOp::kLe), "<=");
}

TEST(CmpOpTest, Reverse) {
  EXPECT_EQ(ReverseCmp(CmpOp::kLt), CmpOp::kGt);
  EXPECT_EQ(ReverseCmp(CmpOp::kGe), CmpOp::kLe);
  EXPECT_EQ(ReverseCmp(CmpOp::kEq), CmpOp::kEq);
  EXPECT_EQ(ReverseCmp(CmpOp::kNe), CmpOp::kNe);
}

TEST(CmpOpTest, EvalCmpThreeWay) {
  EXPECT_TRUE(EvalCmp(CmpOp::kLt, -1));
  EXPECT_FALSE(EvalCmp(CmpOp::kLt, 0));
  EXPECT_TRUE(EvalCmp(CmpOp::kLe, 0));
  EXPECT_TRUE(EvalCmp(CmpOp::kGe, 1));
  EXPECT_TRUE(EvalCmp(CmpOp::kNe, 1));
  EXPECT_FALSE(EvalCmp(CmpOp::kEq, -1));
}

class ExprTest : public ::testing::Test {
 protected:
  ExprTest() : db_(MakePaperCatalog()) {
    ctx_.catalog = &db_.catalog;
    c_ = ctx_.bindings.AddGet("c", db_.city);
    m_ = ctx_.bindings.AddMat("c.mayor", db_.person, c_, db_.city_mayor);
  }
  PaperDb db_;
  QueryContext ctx_;
  BindingId c_, m_;
};

TEST_F(ExprTest, ReferencedBindings) {
  ScalarExprPtr e = ScalarExpr::AttrEqStr(m_, db_.person_name, "Joe");
  BindingSet refs = e->ReferencedBindings();
  EXPECT_TRUE(refs.Contains(m_));
  EXPECT_FALSE(refs.Contains(c_));

  ScalarExprPtr both = ScalarExpr::And(
      {e, ScalarExpr::AttrCmpInt(c_, db_.city_population, CmpOp::kGt, 100)});
  EXPECT_EQ(both->ReferencedBindings().Count(), 2);
}

TEST_F(ExprTest, StructuralEquality) {
  ScalarExprPtr a = ScalarExpr::AttrEqStr(m_, db_.person_name, "Joe");
  ScalarExprPtr b = ScalarExpr::AttrEqStr(m_, db_.person_name, "Joe");
  ScalarExprPtr c = ScalarExpr::AttrEqStr(m_, db_.person_name, "Ann");
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
  EXPECT_EQ(a->Hash(), b->Hash());
}

TEST_F(ExprTest, SelfVsAttrDiffer) {
  ScalarExprPtr self = ScalarExpr::Self(c_);
  ScalarExprPtr attr = ScalarExpr::Attr(c_, db_.city_name);
  EXPECT_FALSE(self->Equals(*attr));
}

TEST_F(ExprTest, ToStringReadable) {
  ScalarExprPtr e = ScalarExpr::AttrEqStr(m_, db_.person_name, "Joe");
  EXPECT_EQ(e->ToString(ctx_.bindings, ctx_.schema()),
            "c.mayor.name == \"Joe\"");
  ScalarExprPtr r = ScalarExpr::RefEq(c_, db_.city_mayor, m_);
  EXPECT_EQ(r->ToString(ctx_.bindings, ctx_.schema()),
            "c.mayor == c.mayor.self");
}

TEST_F(ExprTest, AndOrNotToString) {
  ScalarExprPtr a = ScalarExpr::AttrEqInt(c_, db_.city_population, 5);
  ScalarExprPtr b = ScalarExpr::AttrEqStr(m_, db_.person_name, "Joe");
  EXPECT_NE(ScalarExpr::And({a, b})->ToString(ctx_.bindings, ctx_.schema())
                .find(" and "),
            std::string::npos);
  EXPECT_NE(ScalarExpr::Or({a, b})->ToString(ctx_.bindings, ctx_.schema())
                .find(" or "),
            std::string::npos);
  EXPECT_NE(ScalarExpr::Not(a)->ToString(ctx_.bindings, ctx_.schema())
                .find("not ("),
            std::string::npos);
}

TEST_F(ExprTest, AndOfOneUnwraps) {
  ScalarExprPtr a = ScalarExpr::AttrEqInt(c_, db_.city_population, 5);
  EXPECT_EQ(ScalarExpr::And({a}), a);
  EXPECT_EQ(ScalarExpr::Or({a}), a);
}

TEST_F(ExprTest, SplitConjunctsFlattensNestedAnds) {
  ScalarExprPtr a = ScalarExpr::AttrEqInt(c_, db_.city_population, 1);
  ScalarExprPtr b = ScalarExpr::AttrEqInt(c_, db_.city_population, 2);
  ScalarExprPtr d = ScalarExpr::AttrEqInt(c_, db_.city_population, 3);
  ScalarExprPtr nested = ScalarExpr::And({ScalarExpr::And({a, b}), d});
  std::vector<ScalarExprPtr> parts = ScalarExpr::SplitConjuncts(nested);
  EXPECT_EQ(parts.size(), 3u);
}

TEST_F(ExprTest, SplitConjunctsKeepsOrWhole) {
  ScalarExprPtr a = ScalarExpr::AttrEqInt(c_, db_.city_population, 1);
  ScalarExprPtr b = ScalarExpr::AttrEqInt(c_, db_.city_population, 2);
  ScalarExprPtr disj = ScalarExpr::Or({a, b});
  EXPECT_EQ(ScalarExpr::SplitConjuncts(disj).size(), 1u);
}

TEST_F(ExprTest, SplitConjunctsOfNull) {
  EXPECT_TRUE(ScalarExpr::SplitConjuncts(nullptr).empty());
}

TEST_F(ExprTest, CombineConjunctsRoundTrip) {
  ScalarExprPtr a = ScalarExpr::AttrEqInt(c_, db_.city_population, 1);
  ScalarExprPtr b = ScalarExpr::AttrEqInt(c_, db_.city_population, 2);
  ScalarExprPtr combined = ScalarExpr::CombineConjuncts({a, b});
  EXPECT_EQ(ScalarExpr::SplitConjuncts(combined).size(), 2u);
  ScalarExprPtr single = ScalarExpr::CombineConjuncts({a});
  EXPECT_EQ(single, a);
}

TEST_F(ExprTest, ExprPtrHelpers) {
  ScalarExprPtr a = ScalarExpr::AttrEqInt(c_, db_.city_population, 1);
  ScalarExprPtr b = ScalarExpr::AttrEqInt(c_, db_.city_population, 1);
  EXPECT_TRUE(ExprPtrEquals(a, b));
  EXPECT_TRUE(ExprPtrEquals(nullptr, nullptr));
  EXPECT_FALSE(ExprPtrEquals(a, nullptr));
  EXPECT_EQ(HashExprPtr(a), HashExprPtr(b));
}

TEST_F(ExprTest, CmpChildrenOrderMatters) {
  ScalarExprPtr lt = ScalarExpr::Cmp(CmpOp::kLt, ScalarExpr::Const(Value::Int(1)),
                                     ScalarExpr::Const(Value::Int(2)));
  ScalarExprPtr gt = ScalarExpr::Cmp(CmpOp::kLt, ScalarExpr::Const(Value::Int(2)),
                                     ScalarExpr::Const(Value::Int(1)));
  EXPECT_FALSE(lt->Equals(*gt));
}

}  // namespace
}  // namespace oodb
