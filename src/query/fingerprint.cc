#include "src/query/fingerprint.h"

#include <bit>
#include <cmath>
#include <string>

#include "src/cost/selectivity.h"

namespace oodb {

namespace {

uint64_t SplitMix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Two independently-seeded 64-bit lanes; every input perturbs both.
struct Hash128 {
  uint64_t hi = 0x243f6a8885a308d3ull;  // pi
  uint64_t lo = 0x13198a2e03707344ull;

  void Mix(uint64_t v) {
    hi = SplitMix(hi ^ v);
    lo = SplitMix(lo + (v * 0xff51afd7ed558ccdull | 1));
  }
  void MixStr(const std::string& s) {
    Mix(s.size());
    Mix(std::hash<std::string>{}(s));
  }
  void MixValue(const Value& v) {
    Mix(static_cast<uint64_t>(v.kind));
    MixStr(v.KeyString());
  }
  Fingerprint Get() const { return Fingerprint{hi, lo}; }
};

/// Quantizes a selectivity estimate into a half-octave bucket: literals the
/// estimator maps to selectivities within ~1.19x of each other share a
/// bucket and therefore (by assumption) a plan shape.
///
/// Computed from the exact binary decomposition (frexp), not floating-point
/// log2: libm implementations round log2 differently in the last ulp, and a
/// selectivity sitting on a half-octave boundary (any power of two, or
/// sqrt(1/2) scaled by one) would then bucket differently across platforms —
/// and the bucket feeds the plan-cache fingerprint, which must be
/// bit-deterministic. floor semantics: bucket k covers [2^(k/2), 2^((k+1)/2)).
int64_t SelectivityBucket(double sel) {
  if (!(sel > 0.0)) return INT64_MIN;
  // Nearest double to sqrt(1/2), the mantissa's half-octave split point.
  constexpr double kSqrtHalf = 0.70710678118654752440;
  int exp = 0;
  double mantissa = std::frexp(sel, &exp);  // sel = mantissa * 2^exp, exact
  // floor(2*log2(sel)): mantissa in [0.5, 1) contributes half-octave -2 or
  // -1 relative to 2^exp depending on which side of sqrt(1/2) it falls.
  return 2 * (static_cast<int64_t>(exp) - 1) + (mantissa >= kSqrtHalf ? 1 : 0);
}

/// True when `child` of `parent` is a parameterizable literal: a constant
/// operand of a comparison. Constants elsewhere (constant-true join
/// predicates and other rule-synthesized booleans) are structural and are
/// always keyed exactly.
bool IsParameterizable(const ScalarExpr* parent, const ScalarExpr& child) {
  return parent != nullptr && parent->kind() == ScalarExpr::Kind::kCmp &&
         child.kind() == ScalarExpr::Kind::kConst;
}

struct FingerprintWalker {
  const QueryContext& ctx;
  bool parameterize;
  Hash128 h;
  std::vector<Value> literals;
  SelectivityEstimator est;

  explicit FingerprintWalker(const QueryContext& c, bool param)
      : ctx(c), parameterize(param), est(&c) {}

  void WalkExpr(const ScalarExprPtr& e, const ScalarExpr* parent) {
    if (!e) {
      h.Mix(0x6e756c6c);  // null marker
      return;
    }
    h.Mix(static_cast<uint64_t>(e->kind()) + 0x51);
    switch (e->kind()) {
      case ScalarExpr::Kind::kAttr:
        h.Mix(static_cast<uint64_t>(e->binding()) * 8191 +
              static_cast<uint64_t>(e->field()));
        break;
      case ScalarExpr::Kind::kSelf:
        h.Mix(static_cast<uint64_t>(e->binding()));
        break;
      case ScalarExpr::Kind::kConst:
        if (parameterize && IsParameterizable(parent, *e)) {
          // Keyed by position only (the enclosing comparison mixed in its
          // selectivity bucket); the value is extracted for rebinding.
          h.Mix(0x706172616dull);  // "param"
          literals.push_back(e->value());
        } else {
          h.MixValue(e->value());
        }
        break;
      case ScalarExpr::Kind::kCmp: {
        h.Mix(static_cast<uint64_t>(e->cmp_op()) + 0x11);
        bool has_literal = false;
        for (const ScalarExprPtr& c : e->children()) {
          has_literal |= c->kind() == ScalarExpr::Kind::kConst;
        }
        if (parameterize && has_literal) {
          // The literal's value participates only through its selectivity
          // bucket: literals the estimator cannot distinguish (same index /
          // same [min,max] interpolation bucket) share the key; literals
          // that shift the estimate enough to change plan shape diverge.
          h.Mix(static_cast<uint64_t>(SelectivityBucket(est.Estimate(e))));
        }
        break;
      }
      case ScalarExpr::Kind::kAnd:
      case ScalarExpr::Kind::kOr:
      case ScalarExpr::Kind::kNot:
        h.Mix(e->children().size());
        break;
    }
    for (const ScalarExprPtr& c : e->children()) WalkExpr(c, e.get());
  }

  void WalkOp(const LogicalOp& op) {
    h.Mix(static_cast<uint64_t>(op.kind) + 0xa1);
    switch (op.kind) {
      case LogicalOpKind::kGet:
        h.Mix(static_cast<uint64_t>(op.coll.kind));
        h.MixStr(op.coll.name);
        h.Mix(static_cast<uint64_t>(op.coll.type) * 131 +
              static_cast<uint64_t>(op.binding));
        break;
      case LogicalOpKind::kSelect:
      case LogicalOpKind::kJoin:
        WalkExpr(op.pred, nullptr);
        break;
      case LogicalOpKind::kProject:
        h.Mix(op.emit.size());
        for (const ScalarExprPtr& e : op.emit) WalkExpr(e, nullptr);
        break;
      case LogicalOpKind::kMat:
      case LogicalOpKind::kUnnest:
        h.Mix(static_cast<uint64_t>(op.source) * 1000003 +
              static_cast<uint64_t>(op.field) * 8191 +
              static_cast<uint64_t>(op.target));
        break;
      case LogicalOpKind::kUnion:
      case LogicalOpKind::kIntersect:
      case LogicalOpKind::kDifference:
        break;
    }
  }

  void WalkTree(const LogicalExpr& t) {
    WalkOp(t.op);
    h.Mix(t.children.size());
    for (const LogicalExprPtr& c : t.children) WalkTree(*c);
  }
};

}  // namespace

QueryFingerprint FingerprintQuery(const LogicalExpr& tree,
                                  const QueryContext& ctx,
                                  bool parameterize_literals) {
  FingerprintWalker w(ctx, parameterize_literals);
  // A cache must never serve plans across catalogs: fold the catalog's
  // identity into the fingerprint.
  w.h.Mix(reinterpret_cast<uintptr_t>(ctx.catalog));
  // Binding signatures, in id order (ids are structural: simplification
  // assigns them deterministically; names are display-only and excluded so
  // alias renames share entries).
  w.h.Mix(ctx.bindings.size());
  for (BindingId b = 0; b < static_cast<BindingId>(ctx.bindings.size()); ++b) {
    const BindingDef& def = ctx.bindings.def(b);
    w.h.Mix(static_cast<uint64_t>(def.type) * 1000003 +
            static_cast<uint64_t>(def.origin) * 8191 +
            static_cast<uint64_t>(def.is_ref));
    w.h.Mix(static_cast<uint64_t>(def.parent) * 131 +
            static_cast<uint64_t>(def.via_field) + 7);
  }
  w.WalkTree(tree);
  QueryFingerprint out;
  out.fp = w.h.Get();
  out.literals = std::move(w.literals);
  return out;
}

uint64_t HashOptimizerOptions(const OptimizerOptions& opts) {
  Hash128 h;
  const CostModelOptions& c = opts.cost;
  h.Mix(static_cast<uint64_t>(c.page_size));
  for (double v : {c.random_io_s, c.seq_io_s, c.cpu_scan_tuple_s, c.cpu_pred_s,
                   c.cpu_hash_build_s, c.cpu_hash_probe_s, c.cpu_unnest_s,
                   c.cpu_copy_byte_s, c.cpu_deref_s, c.index_probe_s,
                   c.index_leaf_s, c.assembly_window_discount_floor,
                   c.memory_bytes, c.cpu_batch_overhead_s,
                   c.exchange_startup_s, c.exchange_flow_tuple_s}) {
    h.Mix(std::bit_cast<uint64_t>(v));
  }
  h.Mix(static_cast<uint64_t>(c.assembly_window));
  h.Mix(static_cast<uint64_t>(c.yao_page_faults));
  h.Mix(static_cast<uint64_t>(c.exec_batch_size));
  h.Mix(static_cast<uint64_t>(c.vector_extract_min_rows));
  h.Mix(static_cast<uint64_t>(opts.max_dop));
  h.Mix(opts.disabled_rules.size());
  for (const std::string& r : opts.disabled_rules) h.MixStr(r);
  h.Mix((static_cast<uint64_t>(opts.enable_warm_start_assembly) << 2) |
        (static_cast<uint64_t>(opts.enable_merge_join) << 1) |
        static_cast<uint64_t>(opts.enable_pruning));
  // Deliberately unmixed: `governor` and `verify_plans`. Neither changes
  // which plan wins — the governor only bounds search effort, and the
  // verifier only inspects the result — so sessions differing in them
  // should share cache entries.
  Fingerprint f = h.Get();
  return f.hi ^ (f.lo * 0x9e3779b97f4a7c15ull);
}

namespace {

bool MatchExpr(const ScalarExprPtr& cached, const ScalarExprPtr& fresh,
               const ScalarExpr* cached_parent, ExprSubstitution* subst) {
  if (!cached || !fresh) return cached == nullptr && fresh == nullptr;
  if (cached->kind() != fresh->kind()) return false;
  switch (cached->kind()) {
    case ScalarExpr::Kind::kAttr:
      if (cached->binding() != fresh->binding() ||
          cached->field() != fresh->field()) {
        return false;
      }
      break;
    case ScalarExpr::Kind::kSelf:
      if (cached->binding() != fresh->binding()) return false;
      break;
    case ScalarExpr::Kind::kConst:
      // Comparison literals are exactly the parameterized positions: values
      // may differ. Structural constants must agree exactly.
      if (!IsParameterizable(cached_parent, *cached) &&
          !(cached->value() == fresh->value())) {
        return false;
      }
      break;
    case ScalarExpr::Kind::kCmp:
      if (cached->cmp_op() != fresh->cmp_op()) return false;
      break;
    case ScalarExpr::Kind::kAnd:
    case ScalarExpr::Kind::kOr:
    case ScalarExpr::Kind::kNot:
      break;
  }
  if (cached->children().size() != fresh->children().size()) return false;
  for (size_t i = 0; i < cached->children().size(); ++i) {
    if (!MatchExpr(cached->children()[i], fresh->children()[i], cached.get(),
                   subst)) {
      return false;
    }
  }
  (*subst)[cached.get()] = fresh;
  return true;
}

bool MatchOp(const LogicalOp& cached, const LogicalOp& fresh,
             ExprSubstitution* subst) {
  if (cached.kind != fresh.kind) return false;
  if (!(cached.coll == fresh.coll) || cached.binding != fresh.binding ||
      cached.source != fresh.source || cached.field != fresh.field ||
      cached.target != fresh.target) {
    return false;
  }
  if (cached.emit.size() != fresh.emit.size()) return false;
  for (size_t i = 0; i < cached.emit.size(); ++i) {
    if (!MatchExpr(cached.emit[i], fresh.emit[i], nullptr, subst)) {
      return false;
    }
  }
  if ((cached.pred == nullptr) != (fresh.pred == nullptr)) return false;
  if (cached.pred != nullptr &&
      !MatchExpr(cached.pred, fresh.pred, nullptr, subst)) {
    return false;
  }
  return true;
}

bool MatchTree(const LogicalExpr& cached, const LogicalExpr& fresh,
               ExprSubstitution* subst) {
  if (!MatchOp(cached.op, fresh.op, subst)) return false;
  if (cached.children.size() != fresh.children.size()) return false;
  for (size_t i = 0; i < cached.children.size(); ++i) {
    if (!MatchTree(*cached.children[i], *fresh.children[i], subst)) {
      return false;
    }
  }
  return true;
}

}  // namespace

bool MatchParameterizedTrees(const LogicalExpr& cached,
                             const BindingTable& cached_bindings,
                             const LogicalExpr& fresh,
                             const BindingTable& fresh_bindings,
                             ExprSubstitution* subst) {
  if (cached_bindings.size() != fresh_bindings.size()) return false;
  for (BindingId b = 0; b < static_cast<BindingId>(cached_bindings.size());
       ++b) {
    const BindingDef& a = cached_bindings.def(b);
    const BindingDef& c = fresh_bindings.def(b);
    if (a.type != c.type || a.origin != c.origin || a.parent != c.parent ||
        a.via_field != c.via_field || a.is_ref != c.is_ref) {
      return false;
    }
  }
  return MatchTree(cached, fresh, subst);
}

ScalarExprPtr SubstituteExpr(const ScalarExprPtr& expr,
                             const ExprSubstitution& subst) {
  if (!expr) return expr;
  auto it = subst.find(expr.get());
  if (it != subst.end()) return it->second;
  // Rule-synthesized structure around original subtrees: rebuild around the
  // substituted children; leaves outside the map are literal-independent.
  std::vector<ScalarExprPtr> children;
  children.reserve(expr->children().size());
  bool changed = false;
  for (const ScalarExprPtr& c : expr->children()) {
    ScalarExprPtr s = SubstituteExpr(c, subst);
    changed |= (s != c);
    children.push_back(std::move(s));
  }
  if (!changed) return expr;
  switch (expr->kind()) {
    case ScalarExpr::Kind::kCmp:
      return ScalarExpr::Cmp(expr->cmp_op(), std::move(children[0]),
                             std::move(children[1]));
    case ScalarExpr::Kind::kAnd:
      return ScalarExpr::And(std::move(children));
    case ScalarExpr::Kind::kOr:
      return ScalarExpr::Or(std::move(children));
    case ScalarExpr::Kind::kNot:
      return ScalarExpr::Not(std::move(children[0]));
    default:
      return expr;  // leaves have no children; unreachable with changed set
  }
}

int64_t LimitBucket(int64_t limit) {
  if (limit <= 0) return 0;
  int64_t width = 0;
  for (uint64_t v = static_cast<uint64_t>(limit); v != 0; v >>= 1) ++width;
  return width;  // bit width: floor(log2(k)) + 1
}

}  // namespace oodb
