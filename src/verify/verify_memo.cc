// The memo layer of the verifier: every m-expr belongs to the group that
// lists it, children reference live groups, logical properties of a group
// match what its expressions derive, winners are finished searches with
// finite, additive costs whose plans satisfy their property keys.
#include "src/verify/verify.h"

#include <algorithm>
#include <cmath>

namespace oodb {

namespace {

std::string GroupPath(GroupId g) { return "group#" + std::to_string(g); }

std::string MExprPath(const Memo& memo, const LogicalMExpr& m) {
  std::string op = memo.ctx() != nullptr ? m.op.ToString(*memo.ctx())
                                         : LogicalOpKindName(m.op.kind);
  return GroupPath(m.group) + "/mexpr#" + std::to_string(m.id) + "(" + op +
         ")";
}

bool FiniteNonNegative(double v) { return std::isfinite(v) && v >= 0.0; }

/// Shallow cost sanity for a winner's plan root: finite, non-negative local
/// cost (winners are produced by the search, never by the Exchange pass, so
/// negative locals are always corruption here), total additive over the
/// immediate children. The full plan extracted for the query gets the deep
/// recursive check in VerifyPlan.
void CheckWinnerPlan(const PlanNode& plan, const std::string& path,
                     const VerifyOptions& opts, VerifyReport* report) {
  if (!std::isfinite(plan.local_cost.io_s) ||
      !std::isfinite(plan.local_cost.cpu_s) ||
      !std::isfinite(plan.total_cost.io_s) ||
      !std::isfinite(plan.total_cost.cpu_s)) {
    report->Add(invariant::kMemoWinnerCost, path,
                "winner plan cost is not finite");
    return;
  }
  if (plan.local_cost.io_s < 0.0 || plan.local_cost.cpu_s < 0.0) {
    report->Add(invariant::kMemoWinnerCost, path,
                "winner plan has negative local cost");
  }
  double io = plan.local_cost.io_s;
  double cpu = plan.local_cost.cpu_s;
  for (const PlanNodePtr& c : plan.children) {
    io += c->total_cost.io_s;
    cpu += c->total_cost.cpu_s;
  }
  double tol = opts.cost_rel_tolerance;
  auto close = [tol](double a, double b) {
    return std::abs(a - b) <=
           tol * std::max({1.0, std::abs(a), std::abs(b)});
  };
  if (!close(io, plan.total_cost.io_s) || !close(cpu, plan.total_cost.cpu_s)) {
    report->Add(invariant::kMemoWinnerCost, path,
                "winner total cost is not local + sum of child totals: a "
                "physical alternative undercuts its inputs' lower bound");
  }
}

}  // namespace

VerifyReport VerifyMemoReport(const Memo& memo, const VerifyOptions& opts) {
  VerifyReport report;
  const QueryContext* ctx = memo.ctx();
  const int raw_groups = memo.num_raw_groups();

  auto full = [&report, &opts]() {
    return static_cast<int>(report.violations().size()) >=
           opts.max_violations;
  };

  // --- m-exprs: identity, membership, arity, liveness of children, and
  // logical-property agreement with the owning group. ---
  for (MExprId id = 0; id < memo.num_mexprs() && !full(); ++id) {
    const LogicalMExpr& m = memo.mexpr(id);
    std::string path = MExprPath(memo, m);
    if (m.id != id) {
      report.Add(invariant::kMemoMembership, path,
                 "m-expr stored at slot " + std::to_string(id) +
                     " carries id " + std::to_string(m.id));
    }
    if (m.group < 0 || m.group >= raw_groups) {
      report.Add(invariant::kMemoDanglingGroup, path,
                 "m-expr's owning group id " + std::to_string(m.group) +
                     " does not exist");
      continue;
    }
    const Group& owner = memo.group(m.group);
    bool listed = false;
    for (MExprId member : owner.mexprs) {
      if (member == id) listed = true;
    }
    if (!listed) {
      report.Add(invariant::kMemoMembership, path,
                 "m-expr is not listed by its owning group " +
                     GroupPath(memo.Find(m.group)));
    }
    if (static_cast<int>(m.children.size()) != m.op.Arity()) {
      report.Add(invariant::kMemoArity, path,
                 std::string(LogicalOpKindName(m.op.kind)) + " m-expr has " +
                     std::to_string(m.children.size()) + " children (want " +
                     std::to_string(m.op.Arity()) + ")");
      continue;
    }
    bool children_ok = true;
    std::vector<BindingSet> child_scopes;
    child_scopes.reserve(m.children.size());
    for (GroupId c : m.children) {
      if (c < 0 || c >= raw_groups) {
        report.Add(invariant::kMemoDanglingGroup, path,
                   "child group id " + std::to_string(c) + " does not exist");
        children_ok = false;
        break;
      }
      const Group& child = memo.group(c);
      if (child.mexprs.empty()) {
        report.Add(invariant::kMemoEmptyGroup, path,
                   "child " + GroupPath(memo.Find(c)) +
                       " is live but has no expressions");
        children_ok = false;
        break;
      }
      child_scopes.push_back(child.props.scope);
    }
    if (!children_ok || ctx == nullptr) continue;
    if (Status st = m.op.Validate(*ctx, child_scopes); !st.ok()) {
      report.Add(invariant::kMemoOpInvalid, path, st.message());
      continue;
    }
    // Every expression in a group must produce the group's scope — the
    // "all exprs in a group share logical properties" invariant. Cardinality
    // estimates may legitimately differ per derivation; the scope may not.
    BindingSet derived = m.op.OutputBindings(child_scopes);
    if (!(derived == owner.props.scope)) {
      report.Add(invariant::kMemoScopeDrift, path,
                 "m-expr derives a different scope than its group's logical "
                 "properties carry");
    }
  }

  // --- groups: slot identity, liveness, property sanity, membership
  // back-references, winner discipline. ---
  for (GroupId g = 0; g < raw_groups && !full(); ++g) {
    const Group& group = memo.raw_group(g);
    std::string path = GroupPath(g);
    if (memo.Find(g) != g) continue;  // merged away; its exprs moved
    if (group.id != g) {
      report.Add(invariant::kMemoMembership, path,
                 "group stored at slot " + std::to_string(g) +
                     " carries id " + std::to_string(group.id));
    }
    if (group.mexprs.empty()) {
      report.Add(invariant::kMemoEmptyGroup, path,
                 "live group has no expressions");
    }
    if (!FiniteNonNegative(group.props.card) ||
        !FiniteNonNegative(group.props.tuple_bytes)) {
      report.Add(invariant::kMemoCard, path,
                 "logical properties carry a non-finite or negative "
                 "cardinality/tuple-bytes estimate");
    }
    for (MExprId member : group.mexprs) {
      if (member < 0 || member >= memo.num_mexprs()) {
        report.Add(invariant::kMemoMembership, path,
                   "group lists non-existent m-expr id " +
                       std::to_string(member));
        continue;
      }
      if (memo.Find(memo.mexpr(member).group) != g) {
        report.Add(invariant::kMemoMembership, path,
                   "group lists mexpr#" + std::to_string(member) +
                       " which belongs to " +
                       GroupPath(memo.Find(memo.mexpr(member).group)));
      }
    }
    for (const auto& [required, winner] : group.winners) {
      std::string wpath = path + "/winner";
      if (winner.in_progress) {
        report.Add(invariant::kMemoWinnerInProgress, wpath,
                   "winner left in-progress after search completed");
        continue;
      }
      if (!std::isfinite(winner.lower_bound)) {
        report.Add(invariant::kMemoWinnerCost, wpath,
                   "winner lower bound is not finite");
      }
      if (winner.plan == nullptr) continue;
      if (!winner.plan->delivered.Satisfies(required)) {
        report.Add(invariant::kMemoWinnerProps, wpath,
                   "winner plan's delivered properties do not satisfy the "
                   "required properties it is filed under");
      }
      if (opts.check_costs) {
        CheckWinnerPlan(*winner.plan, wpath, opts, &report);
      }
    }
  }
  return report;
}

Status VerifyMemo(const Memo& memo, const VerifyOptions& opts) {
  return VerifyMemoReport(memo, opts).ToStatus();
}

}  // namespace oodb
