#include "src/session.h"

#include "src/query/fingerprint.h"

namespace oodb {

PlanCache* Session::plan_cache() {
  if (options_.plan_cache != nullptr) return options_.plan_cache.get();
  if (options_.optimizer.plan_cache_capacity == 0) return nullptr;
  if (own_cache_ == nullptr) {
    own_cache_ =
        std::make_shared<PlanCache>(options_.optimizer.plan_cache_capacity);
  }
  return own_cache_.get();
}

Result<SessionResult> Session::Prepare(const std::string& zql) {
  SessionResult out;
  out.ctx.catalog = catalog_;
  SortSpec order;
  OODB_ASSIGN_OR_RETURN(out.logical, ParseAndSimplify(zql, &out.ctx, &order));
  PhysProps required;
  required.sort = order;

  PlanCache* cache = plan_cache();
  if (cache == nullptr) {
    // Cache off: exactly the seed optimization path.
    Optimizer optimizer(catalog_, options_.optimizer);
    OODB_ASSIGN_OR_RETURN(
        out.optimized, optimizer.Optimize(*out.logical, &out.ctx, required));
    return out;
  }

  // Snapshot the version *before* optimizing: if statistics move while we
  // search, the entry is stored under the old version and can never be
  // served after the bump.
  const uint64_t version = catalog_->stats_version();
  QueryFingerprint qfp =
      FingerprintQuery(*out.logical, out.ctx,
                       options_.optimizer.plan_cache_parameterize);
  PlanCacheKey key{qfp.fp, required,
                   HashOptimizerOptions(options_.optimizer)};

  if (std::optional<OptimizedQuery> hit = cache->Lookup(
          key, version, *out.logical, out.ctx.bindings, qfp.literals)) {
    out.optimized = std::move(*hit);
    out.optimized.stats.plan_cached = true;
  } else {
    Optimizer optimizer(catalog_, options_.optimizer);
    OODB_ASSIGN_OR_RETURN(
        out.optimized, optimizer.Optimize(*out.logical, &out.ctx, required));
    auto entry = std::make_shared<CachedPlan>();
    entry->plan = out.optimized.plan;
    entry->cost = out.optimized.cost;
    entry->stats = out.optimized.stats;
    entry->stats_version = version;
    entry->tree = out.logical;
    entry->bindings = out.ctx.bindings;
    entry->literals = std::move(qfp.literals);
    cache->Insert(key, std::move(entry));
  }
  PlanCacheStats cs = cache->stats();
  out.optimized.stats.cache_hits = cs.hits;
  out.optimized.stats.cache_misses = cs.misses;
  out.optimized.stats.cache_evictions = cs.evictions;
  out.optimized.stats.cache_invalidations = cs.invalidations;
  return out;
}

Result<SessionResult> Session::Query(const std::string& zql) {
  OODB_ASSIGN_OR_RETURN(SessionResult out, Prepare(zql));
  OODB_ASSIGN_OR_RETURN(
      out.exec,
      ExecutePlan(*out.optimized.plan, &store_, &out.ctx, options_.exec));
  return out;
}

Result<std::string> Session::Explain(const std::string& zql) {
  OODB_ASSIGN_OR_RETURN(SessionResult r, Prepare(zql));
  std::string out;
  const SearchStats& st = r.optimized.stats;
  if (st.plan_cached) out += "plan: cached\n";
  if (plan_cache() != nullptr) {
    out += "plan cache: hits=" + std::to_string(st.cache_hits) +
           " misses=" + std::to_string(st.cache_misses) +
           " evictions=" + std::to_string(st.cache_evictions) +
           " invalidations=" + std::to_string(st.cache_invalidations) + "\n";
  }
  out += PrintPlan(*r.optimized.plan, r.ctx, /*with_costs=*/true);
  return out;
}

}  // namespace oodb
