#include "src/storage/buffer_pool.h"

namespace oodb {

void BufferPool::Access(PageId page) {
  auto it = index_.find(page);
  if (it != index_.end()) {
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  ++misses_;
  disk_->Read(page);
  lru_.push_front(page);
  index_[page] = lru_.begin();
  if (static_cast<int64_t>(lru_.size()) > capacity_) {
    index_.erase(lru_.back());
    lru_.pop_back();
  }
}

void BufferPool::Reset() {
  lru_.clear();
  index_.clear();
  hits_ = misses_ = 0;
}

}  // namespace oodb
