// Drift-driven adaptive re-optimization (Session::Options::adaptive):
// mid-query re-planning at pipeline breakers, post-execution drift
// recording, and drift-triggered auto-ANALYZE — plus the CardFeedback
// extraction the re-plan consumes.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "src/trace/card_feedback.h"
#include "tests/test_util.h"

namespace oodb {
namespace {

/// The sort query every breaker test uses: no index serves salary order, so
/// the plan always carries a Sort whose input gets the drift check.
const char kSortQuery[] =
    "SELECT e.name FROM Employee e IN Employees ORDER BY e.salary;";
/// Breaker-free scan used by the post-execution (auto-ANALYZE / eviction)
/// tests — drift there is computed from the completed profile, no abort.
const char kScanQuery[] = "SELECT e.name FROM Employee e IN Employees;";

class AdaptiveTest : public ::testing::Test {
 protected:
  AdaptiveTest() : db_(MakePaperCatalog(0.02)) {
    employees_ = CollectionId::Set("Employees", db_.employee);
  }

  void Populate(Session* s) {
    GenOptions gen;
    gen.num_plants = 20;
    auto r = GeneratePaperData(db_, &s->store(), gen);
    ASSERT_TRUE(r.ok()) << r.status();
  }

  int64_t EmployeesCard() {
    return (*db_.catalog.FindCollection(employees_))->cardinality;
  }

  PaperDb db_;
  CollectionId employees_;
};

// Underestimate: stale statistics say Employees holds one row while the
// store holds ~1000. The Sort input's drift check fires mid-stream, the
// session re-plans with the observed scan cardinality, and the corrected
// plan executes to completion — visible on the attempt trail.
TEST_F(AdaptiveTest, MidQueryReplanCorrectsUnderestimate) {
  Session::Options opts;
  opts.adaptive.replan_drift_threshold = 4.0;
  Session s(&db_.catalog, opts);
  Populate(&s);
  const int64_t truth_card = EmployeesCard();
  ASSERT_TRUE(db_.catalog.SetCardinality(employees_, 1).ok());

  auto r = s.Query(kSortQuery);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->replans, 1);
  ASSERT_EQ(r->attempts.size(), 2u);
  EXPECT_EQ(r->attempts[0].status.code(), StatusCode::kPlanDrift);
  EXPECT_FALSE(r->attempts[0].replanned);
  EXPECT_TRUE(r->attempts[1].status.ok());
  EXPECT_TRUE(r->attempts[1].replanned);
  EXPECT_TRUE(r->optimized.stats.replanned);
  ASSERT_NE(r->feedback, nullptr);
  // The feedback carries the store's true scan cardinality, and the
  // re-planned root estimate reflects it instead of the stale catalog.
  auto card = r->feedback->ScanCard(employees_);
  ASSERT_TRUE(card.has_value());
  EXPECT_EQ(static_cast<int64_t>(*card), truth_card);
  EXPECT_GT(r->optimized.plan->logical.card, 100.0);
  // All rows delivered exactly once despite the aborted first attempt.
  EXPECT_EQ(r->exec.rows, truth_card);

  ASSERT_TRUE(db_.catalog.SetCardinality(employees_, truth_card).ok());
}

// Overestimate: the catalog believes Employees is 100x its real size. The
// breaker check fires at end-of-stream (the input ran dry far below the
// estimate) and the re-plan brings the estimate down.
TEST_F(AdaptiveTest, MidQueryReplanCorrectsOverestimate) {
  Session::Options opts;
  opts.adaptive.replan_drift_threshold = 4.0;
  Session s(&db_.catalog, opts);
  Populate(&s);
  const int64_t truth_card = EmployeesCard();
  ASSERT_TRUE(
      db_.catalog.SetCardinality(employees_, truth_card * 100).ok());

  auto r = s.Query(kSortQuery);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->replans, 1);
  ASSERT_EQ(r->attempts.size(), 2u);
  EXPECT_EQ(r->attempts[0].status.code(), StatusCode::kPlanDrift);
  EXPECT_NE(r->attempts[0].status.message().find("over-estimated"),
            std::string::npos)
      << r->attempts[0].status;
  EXPECT_EQ(r->exec.rows, truth_card);

  ASSERT_TRUE(db_.catalog.SetCardinality(employees_, truth_card).ok());
}

// The replan budget is exactly-once by default: once spent, the re-executed
// plan runs with drift checks disarmed, so a statement always terminates —
// even if the feedback-corrected estimates were somehow still off.
TEST_F(AdaptiveTest, ReplanBudgetBoundsAdaptation) {
  Session::Options opts;
  opts.adaptive.replan_drift_threshold = 1.001;  // hair trigger
  opts.adaptive.max_replans = 1;
  Session s(&db_.catalog, opts);
  Populate(&s);
  const int64_t truth_card = EmployeesCard();
  ASSERT_TRUE(db_.catalog.SetCardinality(employees_, 1).ok());

  auto r = s.Query(kSortQuery);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_LE(r->replans, 1);
  EXPECT_EQ(r->exec.rows, truth_card);

  ASSERT_TRUE(db_.catalog.SetCardinality(employees_, truth_card).ok());
}

// With the threshold at zero (the default) the adaptive machinery is inert:
// one attempt, no trail, no feedback — the seed execution path.
TEST_F(AdaptiveTest, DisarmedByDefault) {
  Session s(&db_.catalog);
  Populate(&s);
  const int64_t truth_card = EmployeesCard();
  ASSERT_TRUE(db_.catalog.SetCardinality(employees_, 1).ok());

  auto r = s.Query(kSortQuery);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->replans, 0);
  ASSERT_EQ(r->attempts.size(), 1u);
  EXPECT_TRUE(r->attempts[0].status.ok());
  EXPECT_EQ(r->feedback, nullptr);
  EXPECT_EQ(r->exec.rows, truth_card);

  ASSERT_TRUE(db_.catalog.SetCardinality(employees_, truth_card).ok());
}

// Result parity across engines and parallelism: for every (vectorize, dop)
// configuration, the adaptive path must deliver exactly the rows the static
// path delivers — the re-plan may change the plan, never the answer.
TEST_F(AdaptiveTest, ReplanParityAcrossEnginesAndDop) {
  const int64_t truth_card = [&] {
    Session plain(&db_.catalog);
    Populate(&plain);
    auto truth = plain.Query(kSortQuery);
    EXPECT_TRUE(truth.ok()) << truth.status();
    return truth.ok() ? truth->exec.rows : -1;
  }();
  ASSERT_GT(truth_card, 0);
  for (int vectorize : {0, 1}) {
    for (int max_dop : {1, 4}) {
      Session::Options opts;
      opts.exec.vectorize = vectorize;
      opts.optimizer.max_dop = max_dop;
      opts.adaptive.replan_drift_threshold = 4.0;
      // Populate under truthful statistics (datagen sizes collections from
      // the catalog), then perturb so the adaptive path has drift to see.
      ASSERT_TRUE(db_.catalog.SetCardinality(employees_, truth_card).ok());
      Session s(&db_.catalog, opts);
      Populate(&s);
      ASSERT_TRUE(db_.catalog.SetCardinality(employees_, 1).ok());
      auto r = s.Query(kSortQuery);
      ASSERT_TRUE(r.ok()) << r.status() << " vectorize=" << vectorize
                          << " dop=" << max_dop;
      EXPECT_EQ(r->exec.rows, truth_card)
          << "vectorize=" << vectorize << " dop=" << max_dop;
    }
  }
  ASSERT_TRUE(db_.catalog.SetCardinality(employees_, truth_card).ok());
}

// EXPLAIN ANALYZE after a replan: the trail shows the drift abort and the
// feedback re-plan, the header marks the plan, and — the exactly-once
// accounting gate — max_drift over the final profile is exactly 1x (the
// feedback estimate equals the measured count). A double-merged profile
// (aborted attempt + final attempt) would read every actual twice and
// report 2x.
TEST_F(AdaptiveTest, ExplainAnalyzeShowsReplanTrailWithExactlyOnceProfile) {
  Session::Options opts;
  opts.adaptive.replan_drift_threshold = 4.0;
  Session s(&db_.catalog, opts);
  Populate(&s);
  const int64_t truth_card = EmployeesCard();
  ASSERT_TRUE(db_.catalog.SetCardinality(employees_, 1).ok());

  auto out = s.ExplainAnalyze(kSortQuery);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_NE(out->find("plan: replanned(feedback)"), std::string::npos)
      << *out;
  EXPECT_NE(out->find("retry: attempt 0 step="), std::string::npos) << *out;
  EXPECT_NE(out->find("status=PlanDrift: sort input under-estimated"),
            std::string::npos)
      << *out;
  EXPECT_NE(out->find("replan=feedback status=OK"), std::string::npos)
      << *out;
  EXPECT_NE(out->find("replan: feedback: "), std::string::npos) << *out;
  EXPECT_NE(out->find("max_drift=1x"), std::string::npos) << *out;

  ASSERT_TRUE(db_.catalog.SetCardinality(employees_, truth_card).ok());
}

// Auto-ANALYZE: past the drift threshold the session refreshes catalog
// statistics itself — the stale cardinality snaps back to the measured
// truth and the stats version moves (invalidating every cached plan costed
// under the stale statistics on its next contact).
TEST_F(AdaptiveTest, AutoAnalyzeRefreshesStaleStatistics) {
  Session::Options opts;
  opts.adaptive.analyze_drift_threshold = 4.0;
  Session s(&db_.catalog, opts);
  Populate(&s);
  const int64_t truth_card = EmployeesCard();
  ASSERT_TRUE(db_.catalog.SetCardinality(employees_, 1).ok());
  const uint64_t v0 = db_.catalog.stats_version();

  auto r = s.Query(kScanQuery);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r->observed_drift, 4.0);
  EXPECT_TRUE(r->auto_analyzed);
  EXPECT_GT(db_.catalog.stats_version(), v0);
  EXPECT_EQ(EmployeesCard(), truth_card);
}

// The cooldown rate-limits auto-ANALYZE: a second high-drift statement
// inside the cooldown window leaves the (re-perturbed) statistics alone.
TEST_F(AdaptiveTest, AutoAnalyzeHonorsCooldown) {
  Session::Options opts;
  opts.adaptive.analyze_drift_threshold = 4.0;
  opts.adaptive.analyze_cooldown = 1000;
  Session s(&db_.catalog, opts);
  Populate(&s);
  const int64_t truth_card = EmployeesCard();

  ASSERT_TRUE(db_.catalog.SetCardinality(employees_, 1).ok());
  auto first = s.Query(kScanQuery);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_TRUE(first->auto_analyzed);
  ASSERT_EQ(EmployeesCard(), truth_card);

  ASSERT_TRUE(db_.catalog.SetCardinality(employees_, 1).ok());
  auto second = s.Query(kScanQuery);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_GT(second->observed_drift, 4.0);
  EXPECT_FALSE(second->auto_analyzed);  // within cooldown
  EXPECT_EQ(EmployeesCard(), 1);        // statistics untouched

  ASSERT_TRUE(db_.catalog.SetCardinality(employees_, truth_card).ok());
}

// The auto-ANALYZE is charged to the triggering statement's governor: with
// a row budget too small for the statistics scan, the refresh is skipped
// (the query itself still succeeds) and retried on a later statement.
TEST_F(AdaptiveTest, AutoAnalyzeChargedToGovernor) {
  Session::Options opts;
  opts.adaptive.analyze_drift_threshold = 4.0;
  // Budget covers the query's own rows but not the full-store ANALYZE scan
  // (the store holds far more objects than Employees members).
  opts.governor.max_exec_rows = 2000;
  Session s(&db_.catalog, opts);
  Populate(&s);
  const int64_t truth_card = EmployeesCard();
  ASSERT_TRUE(db_.catalog.SetCardinality(employees_, 1).ok());
  ASSERT_GT(s.store().num_objects(), 2000);

  auto r = s.Query(kScanQuery);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r->observed_drift, 4.0);
  EXPECT_FALSE(r->auto_analyzed);     // refresh refused by the row budget
  EXPECT_EQ(EmployeesCard(), 1);      // and nothing was mutated

  ASSERT_TRUE(db_.catalog.SetCardinality(employees_, truth_card).ok());
}

// A profile with no recorded actuals — the extreme FAILED-run shape — still
// yields exact scan cardinalities (those come from the store, not the
// profile) and nothing else: extraction contributes exactly what was
// measured, never a ratio with an unmeasured denominator.
TEST_F(AdaptiveTest, ExtractFeedbackFromEmptyProfileRecordsOnlyScans) {
  Session s(&db_.catalog);
  Populate(&s);
  auto r = s.Prepare(
      "SELECT e.name FROM Employee e IN Employees WHERE e.age >= 40;");
  ASSERT_TRUE(r.ok()) << r.status();
  ExecProfile empty;
  CardFeedback fb =
      ExtractCardFeedback(*r->optimized.plan, empty, r->ctx, s.store());
  auto card = fb.ScanCard(employees_);
  ASSERT_TRUE(card.has_value());
  EXPECT_EQ(static_cast<int64_t>(*card), EmployeesCard());
  EXPECT_NE(fb.Summary().find("0 conjuncts, 0 joins, 0 unnests"),
            std::string::npos)
      << fb.Summary();
}

// ---------------------------------------------------------------------------
// CardFeedback extraction.

TEST(CardFeedbackTest, RecordAndLookupRoundTrip) {
  CardFeedback fb;
  EXPECT_TRUE(fb.empty());
  CollectionId set = CollectionId::Set("Employees", 3);
  fb.RecordScanCard(set, 123.0);
  fb.RecordSelectivity(42u, 0.25);
  fb.RecordJoinSelectivity(7u, 1e-3);
  fb.RecordUnnestFanout(3, 9, 2.5);
  EXPECT_FALSE(fb.empty());
  EXPECT_EQ(fb.size(), 4u);
  EXPECT_DOUBLE_EQ(*fb.ScanCard(set), 123.0);
  EXPECT_DOUBLE_EQ(*fb.Selectivity(42u), 0.25);
  EXPECT_DOUBLE_EQ(*fb.JoinSelectivity(7u), 1e-3);
  EXPECT_DOUBLE_EQ(*fb.UnnestFanout(3, 9), 2.5);
  // Distinct collections with the same element type do not collide, and
  // neither do sets vs extents.
  EXPECT_FALSE(fb.ScanCard(CollectionId::Set("Others", 3)).has_value());
  EXPECT_FALSE(fb.ScanCard(CollectionId::Extent(3)).has_value());
  EXPECT_FALSE(fb.Selectivity(43u).has_value());
  EXPECT_EQ(fb.Summary(), "feedback: 1 scans, 1 conjuncts, 1 joins, 1 unnests");
}

TEST(CardFeedbackTest, ClampsDegenerateRatios) {
  CardFeedback fb;
  fb.RecordSelectivity(1u, 0.0);      // zero selectivity would zero cards
  fb.RecordSelectivity(2u, 7.0);      // ratios above 1 clamp down
  fb.RecordUnnestFanout(1, 1, 0.0);
  EXPECT_GT(*fb.Selectivity(1u), 0.0);
  EXPECT_DOUBLE_EQ(*fb.Selectivity(2u), 1.0);
  EXPECT_GT(*fb.UnnestFanout(1, 1), 0.0);
}

}  // namespace
}  // namespace oodb
