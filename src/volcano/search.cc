#include "src/volcano/search.h"

#include <chrono>
#include <iostream>
#include <limits>
#include <utility>

#include "src/common/strings.h"
#include "src/trace/opt_trace.h"

namespace oodb {

namespace {
constexpr double kNoLimit = std::numeric_limits<double>::infinity();
}  // namespace

SearchEngine::SearchEngine(QueryContext* qctx, const CostModel* cost_model,
                           const OptimizerOptions* opts)
    : qctx_(qctx), cost_model_(cost_model), opts_(opts), memo_(qctx) {
  octx_.qctx = qctx_;
  octx_.memo = &memo_;
  octx_.cost_model = cost_model_;
  octx_.opts = opts_;
}

void SearchEngine::AddTransformation(std::unique_ptr<TransformationRule> rule) {
  transformations_.push_back(std::move(rule));
}

void SearchEngine::AddImplRule(std::unique_ptr<ImplRule> rule) {
  impl_rules_.push_back(std::move(rule));
}

void SearchEngine::AddEnforcer(std::unique_ptr<Enforcer> enforcer) {
  enforcers_.push_back(std::move(enforcer));
}

Status SearchEngine::Explore() {
  if (transformations_.size() > 64) {
    return Status::Internal("more than 64 transformation rules");
  }
  bool changed = true;
  while (changed) {
    changed = false;
    // New m-exprs appended during the pass are visited in the same pass.
    for (MExprId m = 0; m < static_cast<MExprId>(memo_.num_mexprs()); ++m) {
      if (opts_->governor != nullptr) {
        OODB_RETURN_IF_ERROR(opts_->governor->CheckSearch(
            memo_.num_groups(), memo_.num_mexprs()));
      }
      if (static_cast<size_t>(m) >= child_sizes_seen_.size()) {
        child_sizes_seen_.resize(m + 1, -1);
      }
      int64_t child_sizes = 0;
      for (size_t i = 0; i < memo_.mexpr(m).children.size(); ++i) {
        child_sizes += memo_.group(memo_.mexpr(m).children[i]).mexprs.size();
      }
      bool children_grew = child_sizes != child_sizes_seen_[m];
      for (size_t r = 0; r < transformations_.size(); ++r) {
        const TransformationRule& rule = *transformations_[r];
        if (rule.root_kind() != memo_.mexpr(m).op.kind) continue;
        if (opts_->IsDisabled(rule.name())) continue;
        uint64_t bit = 1ull << r;
        bool fired_before = (memo_.mexpr(m).applied_rules & bit) != 0;
        if (fired_before && !(rule.matches_children() && children_grew)) {
          continue;
        }
        memo_.mutable_mexpr(m).applied_rules |= bit;
        std::vector<RuleExprPtr> out;
        OODB_RETURN_IF_ERROR(rule.Apply(octx_, memo_.mexpr(m), &out));
        if (stats_ != nullptr) ++stats_->transformation_firings;
        GroupId target = memo_.Find(memo_.mexpr(m).group);
        for (const RuleExprPtr& e : out) {
          OODB_ASSIGN_OR_RETURN(MExprId inserted,
                                memo_.InsertRuleExpr(e, target));
          if (inserted != kInvalidMExpr) {
            changed = true;
            if (opts_->trace) {
              std::cerr << "[explore] " << rule.name() << ": +#" << inserted
                        << " " << memo_.mexpr(inserted).op.ToString(*qctx_)
                        << "\n";
            }
            if (opts_->trace_sink != nullptr) {
              // Rule firings dominate the event stream; the (group, mexpr)
              // ids identify the produced expression in the memo without
              // paying for expression rendering on the hot path (the
              // stderr `trace` flag prints the rendered form).
              OptEvent ev;
              ev.kind = OptEventKind::kRuleFired;
              ev.rule = rule.name();
              ev.group = static_cast<int>(target);
              ev.mexpr = static_cast<int>(inserted);
              opts_->trace_sink->Record(std::move(ev));
            }
          }
        }
      }
      child_sizes_seen_[m] = child_sizes;
      // Re-check sizes next round; if a rule enlarged this m-expr's children
      // after we recorded them, the outer loop runs again anyway because
      // `changed` is set when anything was inserted.
    }
  }
  return Status::OK();
}

Result<PlanNodePtr> SearchEngine::OptimizeGroup(GroupId g, PhysProps required,
                                                int depth, double limit) {
  if (depth > 100) return Status::PlanError("optimization recursion too deep");
  if (opts_->governor != nullptr) {
    OODB_RETURN_IF_ERROR(opts_->governor->CheckOptimizeEntry());
  }
  if (!opts_->enable_pruning) limit = kNoLimit;
  g = memo_.Find(g);
  // Normalize: only loadable, in-scope bindings can be required in memory.
  required.in_memory = LoadableBindings(
      required.in_memory.Intersect(memo_.group(g).props.scope), *qctx_);

  {
    Group& grp = memo_.mutable_group(g);
    auto it = grp.winners.find(required);
    if (it != grp.winners.end()) {
      const Winner& w = it->second;
      if (w.in_progress) {
        return Status::PlanError("cyclic property requirement");
      }
      if (w.plan) return w.plan;  // stored plans are always optimal
      if (w.complete) {
        return Status::PlanError("no plan can deliver required properties");
      }
      // Search was abandoned under a cost limit; re-run only if the new
      // limit can reveal something the old one could not.
      if (limit <= w.lower_bound) {
        return Status::PlanError("pruned: no plan within cost limit");
      }
      grp.winners.erase(it);
    }
    grp.winners.emplace(required, Winner{nullptr, true, true, 0.0});
  }
  if (opts_->trace_sink != nullptr) {
    OptEvent ev;
    ev.kind = OptEventKind::kGroupExplored;
    ev.group = static_cast<int>(g);
    ev.detail = required.ToString(*qctx_);
    opts_->trace_sink->Record(std::move(ev));
  }

  // `upper` is the running branch-and-bound bound: plans costing more are
  // not interesting (either over the caller's limit or beaten by `best`).
  double upper = limit;
  PlanNodePtr best;
  auto trace_prune = [&](const char* rule_name, double cost,
                         std::string what) {
    if (opts_->trace_sink == nullptr) return;
    OptEvent ev;
    ev.kind = OptEventKind::kBranchPruned;
    if (rule_name != nullptr) ev.rule = rule_name;
    ev.group = static_cast<int>(g);
    ev.cost = cost;
    ev.detail = std::move(what);
    opts_->trace_sink->Record(std::move(ev));
  };
  auto consider = [&](PlanNodePtr node) {
    if (node->total_cost.total() > upper) {
      trace_prune(nullptr, node->total_cost.total(),
                  node->op.ToString(*qctx_) + " over bound " +
                      FormatDouble(upper, 6));
      return;
    }
    upper = node->total_cost.total();
    if (opts_->trace_sink != nullptr) {
      // Winner replacements are frequent during costing; the operator kind
      // plus the new bound tell the cost-trajectory story without paying
      // for full expression rendering inside the search loop.
      OptEvent ev;
      ev.kind = OptEventKind::kWinnerReplaced;
      ev.group = static_cast<int>(g);
      ev.cost = upper;
      ev.op = PhysOpKindName(node->op.kind);
      opts_->trace_sink->Record(std::move(ev));
    }
    best = std::move(node);
  };

  const std::vector<MExprId> mexprs = memo_.group(g).mexprs;  // copy: stable
  for (MExprId mid : mexprs) {
    const LogicalMExpr& m = memo_.mexpr(mid);
    for (const std::unique_ptr<ImplRule>& rule : impl_rules_) {
      if (rule->root_kind() != m.op.kind) continue;
      if (opts_->IsDisabled(rule->name())) continue;
      std::vector<PhysAlternative> alts;
      OODB_RETURN_IF_ERROR(rule->Apply(octx_, m, required, &alts));
      if (stats_ != nullptr) ++stats_->impl_firings;
      for (PhysAlternative& alt : alts) {
        if (stats_ != nullptr) ++stats_->phys_alternatives;
        if (opts_->governor != nullptr) {
          OODB_RETURN_IF_ERROR(opts_->governor->ChargeAlternative());
        }
        if (!alt.delivered.Satisfies(required)) continue;
        double spent = alt.local_cost.total();
        if (spent > upper) {
          trace_prune(rule->name(), spent,
                      alt.op.ToString(*qctx_) + " local cost over bound");
          continue;
        }
        std::vector<PlanNodePtr> children;
        bool ok = true;
        for (const PhysInput& in : alt.inputs) {
          Result<PlanNodePtr> child =
              OptimizeGroup(in.group, in.required, depth + 1, upper - spent);
          if (!child.ok()) {
            // Ordinary failures ("no plan under this limit") just discard
            // the alternative; a governor trip must abort the whole search.
            if (IsGovernorStatus(child.status().code())) {
              return child.status();
            }
            ok = false;
            break;
          }
          spent += (*child)->total_cost.total();
          if (spent > upper) {
            trace_prune(rule->name(), spent,
                        alt.op.ToString(*qctx_) +
                            " children exceed bound after " +
                            std::to_string(children.size() + 1) + " inputs");
            ok = false;
            break;
          }
          children.push_back(std::move(child).value());
        }
        if (!ok) continue;
        consider(PlanNode::Make(std::move(alt.op), std::move(children),
                                memo_.group(g).props, alt.delivered,
                                alt.local_cost));
      }
    }
  }

  for (const std::unique_ptr<Enforcer>& enf : enforcers_) {
    if (opts_->IsDisabled(enf->name())) continue;
    std::vector<EnforcerAlt> alts;
    OODB_RETURN_IF_ERROR(enf->Apply(octx_, g, required, &alts));
    if (stats_ != nullptr) ++stats_->enforcer_firings;
    for (EnforcerAlt& alt : alts) {
      if (stats_ != nullptr) ++stats_->phys_alternatives;
      if (opts_->governor != nullptr) {
        OODB_RETURN_IF_ERROR(opts_->governor->ChargeAlternative());
      }
      if (alt.child_required == required) continue;  // no progress
      if (!alt.delivered.Satisfies(required)) continue;
      if (alt.local_cost.total() > upper) {
        trace_prune(enf->name(), alt.local_cost.total(),
                    alt.op.ToString(*qctx_) + " local cost over bound");
        continue;
      }
      Result<PlanNodePtr> child = OptimizeGroup(
          g, alt.child_required, depth + 1, upper - alt.local_cost.total());
      if (!child.ok()) {
        if (IsGovernorStatus(child.status().code())) return child.status();
        continue;
      }
      if (opts_->trace_sink != nullptr) {
        OptEvent ev;
        ev.kind = OptEventKind::kEnforcerInserted;
        ev.rule = enf->name();
        ev.group = static_cast<int>(g);
        ev.cost = alt.local_cost.total();
        ev.detail = alt.op.ToString(*qctx_);
        opts_->trace_sink->Record(std::move(ev));
      }
      consider(PlanNode::Make(std::move(alt.op), {std::move(child).value()},
                              memo_.group(g).props, alt.delivered,
                              alt.local_cost));
    }
  }

  {
    Winner w;
    w.plan = best;
    if (!best) {
      // Definitive only if no limit could have cut a branch. The lower
      // bound is meaningful (and read) only for an abandoned search; a
      // definitive no-plan verdict keeps it finite so the memo verifier's
      // cost invariants hold for every stored winner.
      w.complete = limit >= kNoLimit;
      w.lower_bound = w.complete ? 0.0 : limit;
    }
    memo_.mutable_group(g).winners[required] = std::move(w);
  }
  if (!best) {
    return Status::PlanError("no plan found for group " + std::to_string(g));
  }
  if (opts_->trace) {
    std::cerr << "[optimize] group " << g << " under "
              << required.ToString(*qctx_) << " -> "
              << best->op.ToString(*qctx_) << " cost "
              << best->total_cost.ToString() << "\n";
  }
  return best;
}

Result<PlanNodePtr> SearchEngine::Optimize(const LogicalExpr& input,
                                           const PhysProps& required,
                                           SearchStats* stats) {
  stats_ = stats;
  auto start = std::chrono::steady_clock::now();
  OODB_ASSIGN_OR_RETURN(GroupId root, memo_.InsertTree(input));
  OODB_RETURN_IF_ERROR(Explore());
  Result<PlanNodePtr> plan = OptimizeGroup(root, required, 0, kNoLimit);
  auto end = std::chrono::steady_clock::now();
  if (stats_ != nullptr) {
    stats_->groups = memo_.num_groups();
    stats_->logical_mexprs = memo_.num_mexprs();
    stats_->optimize_seconds +=
        std::chrono::duration<double>(end - start).count();
    if (opts_->governor != nullptr) {
      stats_->governor = opts_->governor->stats();
    }
  }
  return plan;
}

}  // namespace oodb
