#include "src/algebra/logical_props.h"

#include <algorithm>

#include "src/cost/selectivity.h"
#include "src/trace/card_feedback.h"

namespace oodb {

Result<LogicalProps> DeriveLogicalProps(
    const LogicalOp& op, const std::vector<LogicalProps>& child_props,
    const QueryContext& ctx) {
  SelectivityEstimator sel(&ctx);
  std::vector<BindingSet> child_scopes;
  child_scopes.reserve(child_props.size());
  for (const LogicalProps& p : child_props) child_scopes.push_back(p.scope);

  LogicalProps out;
  out.scope = op.OutputBindings(child_scopes);

  switch (op.kind) {
    case LogicalOpKind::kGet: {
      OODB_ASSIGN_OR_RETURN(const CollectionInfo* info,
                            ctx.catalog->FindCollection(op.coll));
      out.card = static_cast<double>(info->cardinality);
      // An adaptive re-plan has the store's measured member count — exact,
      // where the catalog entry may predate arbitrary growth.
      if (ctx.feedback != nullptr) {
        if (std::optional<double> c = ctx.feedback->ScanCard(op.coll)) {
          out.card = *c;
        }
      }
      out.tuple_bytes = ctx.schema().type(info->id.type).object_size();
      return out;
    }
    case LogicalOpKind::kSelect:
      out.card = child_props[0].card * sel.Estimate(op.pred);
      out.tuple_bytes = child_props[0].tuple_bytes;
      return out;
    case LogicalOpKind::kProject: {
      out.card = child_props[0].card;
      double bytes = 0;
      for (const ScalarExprPtr& e : op.emit) {
        if (e->kind() == ScalarExpr::Kind::kAttr) {
          const BindingDef& b = ctx.bindings.def(e->binding());
          bytes += ctx.schema().type(b.type).field(e->field()).avg_size;
        } else {
          bytes += 8;
        }
      }
      out.tuple_bytes = std::max(8.0, bytes);
      return out;
    }
    case LogicalOpKind::kMat: {
      out.card = child_props[0].card;
      const BindingDef& target = ctx.bindings.def(op.target);
      out.tuple_bytes = child_props[0].tuple_bytes +
                        ctx.schema().type(target.type).object_size();
      return out;
    }
    case LogicalOpKind::kUnnest: {
      const BindingDef& src = ctx.bindings.def(op.source);
      const FieldDef& f = ctx.schema().type(src.type).field(op.field);
      double fanout = f.avg_set_card > 0 ? f.avg_set_card : 1.0;
      if (ctx.feedback != nullptr) {
        if (std::optional<double> measured =
                ctx.feedback->UnnestFanout(src.type, op.field)) {
          fanout = *measured;
        }
      }
      out.card = child_props[0].card * fanout;
      out.tuple_bytes = child_props[0].tuple_bytes + 8.0;
      return out;
    }
    case LogicalOpKind::kJoin: {
      double l = child_props[0].card, r = child_props[1].card;
      out.card = l * r * sel.JoinSelectivity(op.pred, l, r);
      out.tuple_bytes = child_props[0].tuple_bytes + child_props[1].tuple_bytes;
      return out;
    }
    case LogicalOpKind::kUnion:
      out.card = child_props[0].card + child_props[1].card;
      out.tuple_bytes = child_props[0].tuple_bytes;
      return out;
    case LogicalOpKind::kIntersect:
      out.card =
          0.5 * std::min(child_props[0].card, child_props[1].card);
      out.tuple_bytes = child_props[0].tuple_bytes;
      return out;
    case LogicalOpKind::kDifference:
      out.card = 0.5 * child_props[0].card;
      out.tuple_bytes = child_props[0].tuple_bytes;
      return out;
  }
  return Status::Internal("unhandled logical operator in DeriveLogicalProps");
}

Result<LogicalProps> DeriveTreeProps(const LogicalExpr& expr,
                                     const QueryContext& ctx) {
  std::vector<LogicalProps> child_props;
  for (const LogicalExprPtr& c : expr.children) {
    OODB_ASSIGN_OR_RETURN(LogicalProps p, DeriveTreeProps(*c, ctx));
    child_props.push_back(p);
  }
  return DeriveLogicalProps(expr.op, child_props, ctx);
}

}  // namespace oodb
