# Empty dependencies file for oodb.
# This may be replaced when dependencies are built.
