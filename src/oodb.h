// Umbrella header: the public API of the Open OODB query optimizer library.
//
// Typical usage:
//
//   PaperDb db = MakePaperCatalog();
//   QueryContext ctx;  ctx.catalog = &db.catalog;
//   auto logical = ParseAndSimplify(
//       "SELECT c FROM City c IN Cities WHERE c.mayor.name == 'Joe'", &ctx);
//   Optimizer opt(&db.catalog);
//   auto result = opt.Optimize(**logical, &ctx);
//   std::cout << PrintPlan(*result->plan, ctx);
//
// See README.md for the architecture overview and examples/ for runnable
// programs.
#ifndef OODB_OODB_H_
#define OODB_OODB_H_

#include "src/baseline/greedy.h"
#include "src/common/metrics.h"
#include "src/dynamic/dynamic_plans.h"
#include "src/catalog/paper_catalog.h"
#include "src/exec/executor.h"
#include "src/optimizer.h"
#include "src/optimizer/plan_cache.h"
#include "src/query/builder.h"
#include "src/query/fingerprint.h"
#include "src/query/simplify.h"
#include "src/session.h"
#include "src/storage/datagen.h"
#include "src/trace/opt_trace.h"
#include "src/verify/verify.h"

#endif  // OODB_OODB_H_
