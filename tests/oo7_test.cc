// The OO7-inspired CAD workload: a second, structurally different schema —
// deep composition hierarchies, shared components, multi-level set-valued
// traversals — exercising the optimizer and executor beyond the paper's
// Table-1 universe.
#include <gtest/gtest.h>

#include <cstdlib>

#include "src/exec/reference.h"
#include "src/workloads/oo7.h"
#include "tests/test_util.h"

namespace oodb {
namespace {

Oo7Options SmallConfig() {
  Oo7Options o;
  o.complex_per_module = 3;
  o.base_per_complex = 4;
  o.components_per_base = 2;
  o.num_composite_parts = 20;
  o.atomic_per_composite = 8;
  o.num_build_dates = 20;
  o.num_doc_titles = 5;
  return o;
}

class Oo7Test : public ::testing::Test {
 protected:
  Oo7Test() {
    auto r = MakeOo7(SmallConfig());
    EXPECT_TRUE(r.ok()) << r.status();
    instance_ = std::move(r).value();
  }

  Oo7Db& db() { return *instance_.db; }
  ObjectStore& store() { return *instance_.store; }

  /// Simulation-free peek of a known-valid oid (fails the test on error).
  const ObjectData& Obj(Oid oid) {
    Result<const ObjectData*> r = store().Peek(oid);
    if (!r.ok()) {
      ADD_FAILURE() << r.status();
      std::abort();
    }
    return **r;
  }

  struct Ran {
    OptimizedQuery optimized;
    ExecStats stats;
    QueryContext ctx;
  };

  Ran Run(const std::string& text, OptimizerOptions opts = {}) {
    Ran out;
    out.ctx.catalog = &db().catalog;
    auto logical = ParseAndSimplify(text, &out.ctx);
    EXPECT_TRUE(logical.ok()) << logical.status();
    opts.verify_plans = true;
    Optimizer opt(&db().catalog, std::move(opts));
    auto planned = opt.Optimize(**logical, &out.ctx);
    EXPECT_TRUE(planned.ok()) << planned.status();
    EXPECT_TRUE(planned->stats.verify_error.empty())
        << text << "\n" << planned->stats.verify_error;
    out.optimized = *planned;
    auto stats = ExecutePlan(*planned->plan, &store(), &out.ctx);
    EXPECT_TRUE(stats.ok()) << stats.status() << "\n"
                            << PrintPlan(*planned->plan, out.ctx);
    out.stats = *std::move(stats);
    return out;
  }

  Oo7Instance instance_;
};

TEST_F(Oo7Test, PopulationMatchesConfiguration) {
  Oo7Options o = SmallConfig();
  EXPECT_EQ(db().modules.size(), static_cast<size_t>(o.num_modules));
  EXPECT_EQ(db().composite_parts.size(),
            static_cast<size_t>(o.num_composite_parts));
  EXPECT_EQ(db().atomic_parts.size(),
            static_cast<size_t>(o.num_composite_parts * o.atomic_per_composite));
  EXPECT_EQ(db().base_assemblies.size(),
            static_cast<size_t>(o.num_modules * o.complex_per_module *
                                o.base_per_complex));
}

TEST_F(Oo7Test, CompositionLinksAreConsistent) {
  // Every atomic part's partOf points back to a composite that contains it.
  for (Oid a : db().atomic_parts) {
    Oid comp = Obj(a).ref(db().atomic_part_of);
    const ObjectData& c = Obj(comp);
    const std::vector<Oid>& parts = c.ref_sets[0];
    EXPECT_NE(std::find(parts.begin(), parts.end(), a), parts.end());
  }
}

TEST_F(Oo7Test, ExactMatchUsesIdIndex) {
  Ran r = Run(Oo7QueryExactMatch(7));
  EXPECT_EQ(CountOps(*r.optimized.plan, PhysOpKind::kIndexScan), 1);
  EXPECT_EQ(r.stats.rows, 1);
}

TEST_F(Oo7Test, DocTitleQueryRowsCorrect) {
  // At this tiny scale the whole collection fits in two pages, so the
  // cost-based optimizer rightly prefers the file scan; correctness only.
  Ran r = Run(Oo7QueryByDocTitle("Doc2"));
  // 20 composites over 5 titles -> 4 qualifying.
  EXPECT_EQ(r.stats.rows, 4);
}

TEST(Oo7PlanTest, DocTitlePathIndexCollapsesAtScale) {
  // With a production-sized component library the path index wins.
  Oo7Options o;
  o.num_composite_parts = 5000;
  o.num_doc_titles = 500;
  std::unique_ptr<Oo7Db> db = MakeOo7Catalog(o);
  QueryContext ctx;
  ctx.catalog = &db->catalog;
  auto logical = ParseAndSimplify(Oo7QueryByDocTitle("Doc42"), &ctx);
  ASSERT_TRUE(logical.ok()) << logical.status();
  Optimizer opt(&db->catalog);
  auto planned = opt.Optimize(**logical, &ctx);
  ASSERT_TRUE(planned.ok()) << planned.status();
  EXPECT_EQ(CountOps(*planned->plan, PhysOpKind::kIndexScan), 1)
      << PrintPlan(*planned->plan, ctx);
}

TEST_F(Oo7Test, NewerComponentsMatchesBruteForce) {
  int expected = 0;
  for (Oid b : db().base_assemblies) {
    const ObjectData& base = Obj(b);
    for (Oid p : base.ref_sets[0]) {
      if (Obj(p).value(db().comp_build_date).i >
          base.value(db().base_build_date).i) {
        ++expected;
      }
    }
  }
  Ran r = Run(kOo7QueryNewerComponents);
  EXPECT_EQ(r.stats.rows, expected);
  EXPECT_GT(expected, 0);
}

TEST_F(Oo7Test, DeepTraversalMatchesReference) {
  QueryContext ctx;
  ctx.catalog = &db().catalog;
  auto logical = ParseAndSimplify(kOo7QueryTraversal, &ctx);
  ASSERT_TRUE(logical.ok()) << logical.status();
  auto reference = EvaluateReference(**logical, &store(), ctx);
  ASSERT_TRUE(reference.ok()) << reference.status();

  Ran r = Run(kOo7QueryTraversal);
  EXPECT_EQ(r.stats.rows, static_cast<int64_t>(reference->rows.size()));
  EXPECT_GT(r.stats.rows, 0);
  // Three unnest levels survived simplification and planning.
  EXPECT_EQ(CountOps(*r.optimized.plan, PhysOpKind::kAlgUnnest), 3);
}

TEST_F(Oo7Test, TraversalConsistentAcrossRuleConfigs) {
  Ran base = Run(kOo7QueryTraversal);
  OptimizerOptions no_join;
  no_join.disabled_rules = {kRuleMatToJoin, kRuleJoinCommute};
  Ran chased = Run(kOo7QueryTraversal, no_join);
  EXPECT_EQ(base.stats.rows, chased.stats.rows);
  OptimizerOptions pruned;
  pruned.enable_pruning = true;
  Ran p = Run(kOo7QueryTraversal, pruned);
  EXPECT_DOUBLE_EQ(p.optimized.cost.total(), base.optimized.cost.total());
}

TEST_F(Oo7Test, SharedComponentsFanIn) {
  // Composite parts are shared between assemblies: the traversal touches
  // fewer distinct composites than (assemblies x components) pairs.
  Ran r = Run(
      "SELECT b.id, p.id FROM BaseAssembly b IN BaseAssemblies, "
      "CompositePart p IN b.components;");
  Oo7Options o = SmallConfig();
  EXPECT_EQ(r.stats.rows, static_cast<int64_t>(db().base_assemblies.size() *
                                               o.components_per_base));
}

TEST_F(Oo7Test, AnalyzeMeasuresOo7Statistics) {
  ASSERT_TRUE(AnalyzeStore(store(), &db().catalog).ok());
  const FieldDef& date = db().catalog.schema()
                             .type(db().base_assembly)
                             .field(db().base_build_date);
  EXPECT_GE(date.min_value, 0);
  EXPECT_LT(date.max_value, 20);
  const FieldDef& comps = db().catalog.schema()
                              .type(db().base_assembly)
                              .field(db().base_components);
  EXPECT_DOUBLE_EQ(comps.avg_set_card, 2.0);
}

TEST_F(Oo7Test, OrderByBuildDate) {
  QueryContext ctx;
  ctx.catalog = &db().catalog;
  SortSpec order;
  auto logical = ParseAndSimplify(
      "SELECT b.buildDate, b.id FROM BaseAssembly b IN BaseAssemblies "
      "WHERE b.buildDate >= 10 ORDER BY b.buildDate;",
      &ctx, &order);
  ASSERT_TRUE(logical.ok()) << logical.status();
  PhysProps required;
  required.sort = order;
  Optimizer opt(&db().catalog);
  auto planned = opt.Optimize(**logical, &ctx, required);
  ASSERT_TRUE(planned.ok()) << planned.status();
  ExecOptions eo;
  eo.sample_limit = 1 << 16;
  auto stats = ExecutePlan(*planned->plan, &store(), &ctx, eo);
  ASSERT_TRUE(stats.ok()) << stats.status();
  for (size_t i = 1; i < stats->sample_rows.size(); ++i) {
    EXPECT_LE(stats->sample_rows[i - 1][0].i, stats->sample_rows[i][0].i);
  }
}

}  // namespace
}  // namespace oodb
