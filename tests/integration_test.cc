// End-to-end plan-equivalence property tests: every optimizer configuration
// must produce plans that return the *same results* when executed — only the
// costs may differ. This exercises simplification, the full rule set, the
// property machinery, and every execution operator together.
#include <gtest/gtest.h>

#include <algorithm>

#include "tests/test_util.h"

namespace oodb {
namespace {

constexpr double kScale = 0.02;

struct Config {
  const char* name;
  OptimizerOptions opts;
};

std::vector<Config> Configs() {
  std::vector<Config> configs;
  configs.push_back({"all-rules", {}});
  {
    OptimizerOptions o;
    o.disabled_rules = {kRuleJoinCommute};
    configs.push_back({"no-join-commute", o});
  }
  {
    OptimizerOptions o;
    o.disabled_rules = {kImplIndexScan};
    configs.push_back({"no-collapse-to-index-scan", o});
  }
  {
    OptimizerOptions o;
    o.disabled_rules = {kRuleMatToJoin};
    configs.push_back({"no-mat-to-join", o});
  }
  {
    OptimizerOptions o;
    o.cost.assembly_window = 1;
    configs.push_back({"window-1", o});
  }
  {
    OptimizerOptions o;
    o.enable_warm_start_assembly = true;
    configs.push_back({"warm-start", o});
  }
  {
    OptimizerOptions o;
    o.enable_merge_join = true;
    configs.push_back({"merge-join", o});
  }
  {
    OptimizerOptions o;
    o.disabled_rules = {kImplHybridHashJoin};
    configs.push_back({"no-hash-join", o});
  }
  return configs;
}

const char* Queries[] = {
    // Query 1 (Dallas plants).
    "SELECT e.name, e.job.name, e.dept.name FROM Employee e IN Employees "
    "WHERE e.dept.plant.location == \"Dallas\";",
    // Query 2 (mayor Joe).
    "SELECT c.name FROM City c IN Cities WHERE c.mayor.name == \"Joe\";",
    // Query 3 (mayor age in output).
    "SELECT c.mayor.age, c.name FROM City c IN Cities "
    "WHERE c.mayor.name == \"Joe\";",
    // Query 4 variant (time value that exists at this scale).
    "SELECT t.name FROM Task t IN Tasks, Employee e IN t.team_members "
    "WHERE e.name == \"Fred\" && t.time == 5;",
    // Explicit join with a local predicate.
    "SELECT e.name, d.name FROM Employee e IN Employees, "
    "Department d IN Department WHERE e.dept == d && d.floor == 3;",
    // Range + path + reverse traversal potential.
    "SELECT e.name FROM Employee e IN Employees "
    "WHERE e.job.name == \"Job7\" && e.age >= 30;",
};

class PlanEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  static PaperDb* db_;
  static ObjectStore* store_;

  static void SetUpTestSuite() {
    db_ = new PaperDb(MakePaperCatalog(kScale));
    store_ = new ObjectStore(&db_->catalog);
    GenOptions gen;
    gen.num_plants = 20;
    auto r = GeneratePaperData(*db_, store_, gen);
    ASSERT_TRUE(r.ok()) << r.status();
  }

  static void TearDownTestSuite() {
    delete store_;
    delete db_;
    store_ = nullptr;
    db_ = nullptr;
  }

  /// Runs the query under a config and returns the sorted projected rows.
  std::vector<std::string> RowsUnder(const char* text,
                                     const OptimizerOptions& opts) {
    QueryContext ctx;
    ctx.catalog = &db_->catalog;
    auto logical = ParseAndSimplify(text, &ctx);
    EXPECT_TRUE(logical.ok()) << logical.status();
    if (!logical.ok()) return {};
    Optimizer opt(&db_->catalog, opts);
    auto planned = opt.Optimize(**logical, &ctx);
    EXPECT_TRUE(planned.ok()) << planned.status();
    if (!planned.ok()) return {};
    ExecOptions eo;
    eo.sample_limit = 1 << 20;  // keep all rows
    auto stats = ExecutePlan(*planned->plan, store_, &ctx, eo);
    EXPECT_TRUE(stats.ok()) << stats.status() << "\nplan:\n"
                            << PrintPlan(*planned->plan, ctx);
    if (!stats.ok()) return {};
    std::vector<std::string> rows;
    for (const std::vector<Value>& row : stats->sample_rows) {
      std::string s;
      for (const Value& v : row) {
        s += v.ToString();
        s += '|';
      }
      rows.push_back(std::move(s));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  }
};

PaperDb* PlanEquivalenceTest::db_ = nullptr;
ObjectStore* PlanEquivalenceTest::store_ = nullptr;

TEST_P(PlanEquivalenceTest, SameResultsAsAllRules) {
  auto [query_idx, config_idx] = GetParam();
  const char* text = Queries[query_idx];
  Config config = Configs()[config_idx];

  std::vector<std::string> baseline = RowsUnder(text, OptimizerOptions{});
  std::vector<std::string> rows = RowsUnder(text, config.opts);
  EXPECT_EQ(rows, baseline) << "query " << query_idx << " config "
                            << config.name;
}

INSTANTIATE_TEST_SUITE_P(
    QueriesByConfigs, PlanEquivalenceTest,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Range(0, static_cast<int>(Configs().size()))),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "q" + std::to_string(std::get<0>(info.param)) + "_" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace oodb
