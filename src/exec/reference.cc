#include "src/exec/reference.h"

#include <algorithm>
#include <map>

namespace oodb {

namespace {

class ReferenceEvaluator {
 public:
  ReferenceEvaluator(ObjectStore* store, const QueryContext& ctx)
      : store_(store), ctx_(ctx) {}

  Result<std::vector<Tuple>> Eval(const LogicalExpr& expr) {
    switch (expr.op.kind) {
      case LogicalOpKind::kGet:
        return EvalGet(expr.op);
      case LogicalOpKind::kSelect: {
        OODB_ASSIGN_OR_RETURN(std::vector<Tuple> in, Eval(*expr.children[0]));
        std::vector<Tuple> out;
        for (Tuple& t : in) {
          OODB_ASSIGN_OR_RETURN(bool pass, EvalPredicate(expr.op.pred, t, ctx_));
          if (pass) out.push_back(std::move(t));
        }
        return out;
      }
      case LogicalOpKind::kProject:
        // Scope narrowing happens at row extraction; tuples pass through.
        return Eval(*expr.children[0]);
      case LogicalOpKind::kMat: {
        OODB_ASSIGN_OR_RETURN(std::vector<Tuple> in, Eval(*expr.children[0]));
        std::vector<Tuple> out;
        for (Tuple& t : in) {
          Oid target;
          if (expr.op.field == kInvalidField) {
            target = t.slot(expr.op.source).ref;
          } else {
            const Slot& src = t.slot(expr.op.source);
            if (!src.loaded()) {
              return Status::Internal("reference eval: source not loaded");
            }
            target = src.obj->ref(expr.op.field);
          }
          // A dangling reference drops the tuple (Mat == Join semantics).
          if (target == kInvalidOid || !store_->Exists(target)) continue;
          OODB_ASSIGN_OR_RETURN(const ObjectData* obj,
                                store_->Read(target, /*charge_io=*/false));
          t.slot(expr.op.target) = {target, obj};
          out.push_back(std::move(t));
        }
        return out;
      }
      case LogicalOpKind::kUnnest: {
        OODB_ASSIGN_OR_RETURN(std::vector<Tuple> in, Eval(*expr.children[0]));
        std::vector<Tuple> out;
        for (const Tuple& t : in) {
          const Slot& src = t.slot(expr.op.source);
          if (!src.loaded()) {
            return Status::Internal("reference eval: unnest source not loaded");
          }
          const TypeDef& td = ctx_.schema().type(src.obj->type);
          int slot = 0;
          for (FieldId f = 0; f < expr.op.field; ++f) {
            if (td.field(f).kind == FieldKind::kRefSet) ++slot;
          }
          for (Oid member : src.obj->ref_sets[slot]) {
            Tuple copy = t;
            copy.slot(expr.op.target) = {member, nullptr};
            out.push_back(std::move(copy));
          }
        }
        return out;
      }
      case LogicalOpKind::kJoin: {
        OODB_ASSIGN_OR_RETURN(std::vector<Tuple> left, Eval(*expr.children[0]));
        OODB_ASSIGN_OR_RETURN(std::vector<Tuple> right, Eval(*expr.children[1]));
        std::vector<Tuple> out;
        for (const Tuple& l : left) {
          for (const Tuple& r : right) {
            Tuple merged = l;
            merged.MergeFrom(r);
            OODB_ASSIGN_OR_RETURN(bool pass,
                                  EvalPredicate(expr.op.pred, merged, ctx_));
            if (pass) out.push_back(std::move(merged));
          }
        }
        return out;
      }
      case LogicalOpKind::kUnion:
      case LogicalOpKind::kIntersect:
      case LogicalOpKind::kDifference:
        return EvalSetOp(expr);
    }
    return Status::Internal("unhandled operator in reference evaluator");
  }

 private:
  Result<std::vector<Tuple>> EvalGet(const LogicalOp& op) {
    OODB_ASSIGN_OR_RETURN(const std::vector<Oid>* members,
                          store_->CollectionMembers(op.coll));
    std::vector<Tuple> out;
    out.reserve(members->size());
    for (Oid oid : *members) {
      Tuple t(ctx_.bindings.size());
      OODB_ASSIGN_OR_RETURN(const ObjectData* obj,
                            store_->Read(oid, /*charge_io=*/false));
      t.slot(op.binding) = {oid, obj};
      out.push_back(std::move(t));
    }
    return out;
  }

  Result<std::vector<Tuple>> EvalSetOp(const LogicalExpr& expr) {
    OODB_ASSIGN_OR_RETURN(std::vector<Tuple> left, Eval(*expr.children[0]));
    OODB_ASSIGN_OR_RETURN(std::vector<Tuple> right, Eval(*expr.children[1]));
    BindingSet scope = expr.Scope();
    auto key = [&](const Tuple& t) {
      std::string k;
      for (BindingId b : scope.ToVector()) {
        k += std::to_string(t.slot(b).ref);
        k += '|';
      }
      return k;
    };
    std::map<std::string, Tuple> l, r;
    for (Tuple& t : left) l.emplace(key(t), std::move(t));
    for (Tuple& t : right) r.emplace(key(t), std::move(t));
    std::vector<Tuple> out;
    switch (expr.op.kind) {
      case LogicalOpKind::kUnion:
        for (auto& [k, t] : l) {
          (void)k;
          out.push_back(t);
        }
        for (auto& [k, t] : r) {
          if (l.count(k) == 0) out.push_back(t);
        }
        break;
      case LogicalOpKind::kIntersect:
        for (auto& [k, t] : l) {
          if (r.count(k) != 0) out.push_back(t);
        }
        break;
      default:
        for (auto& [k, t] : l) {
          if (r.count(k) == 0) out.push_back(t);
        }
        break;
    }
    return out;
  }

  ObjectStore* store_;
  const QueryContext& ctx_;
};

}  // namespace

Result<ReferenceResult> EvaluateReference(const LogicalExpr& expr,
                                          ObjectStore* store,
                                          const QueryContext& ctx) {
  ReferenceEvaluator eval(store, ctx);
  ReferenceResult out;
  OODB_ASSIGN_OR_RETURN(out.tuples, eval.Eval(expr));
  if (expr.op.kind == LogicalOpKind::kProject) {
    for (const Tuple& t : out.tuples) {
      std::vector<Value> row;
      for (const ScalarExprPtr& e : expr.op.emit) {
        OODB_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, t, ctx));
        row.push_back(std::move(v));
      }
      out.rows.push_back(std::move(row));
    }
  }
  return out;
}

}  // namespace oodb
