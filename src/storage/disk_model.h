// Simulated disk: tracks page reads, classifies them as sequential or
// random by arm position, and accumulates simulated elapsed time using the
// same timing constants as the optimizer's cost model — so optimizer
// estimates can be validated against "measured" execution behaviour.
#ifndef OODB_STORAGE_DISK_MODEL_H_
#define OODB_STORAGE_DISK_MODEL_H_

#include <atomic>
#include <cstdint>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/cost/cost_model.h"

namespace oodb {

using PageId = int64_t;
inline constexpr PageId kInvalidPage = -1;

/// Accumulates simulated I/O and CPU time during execution.
///
/// Thread-compatible, not thread-safe: each thread charges its own SimClock.
/// The store clock's io_s is only written by DiskModel::Read (serialized by
/// the disk mutex); Exchange workers charge CPU to private clocks that are
/// merged after the workers are joined.
struct SimClock {
  double io_s = 0.0;
  double cpu_s = 0.0;

  double total() const { return io_s + cpu_s; }
  void Reset() { io_s = cpu_s = 0.0; }
  void MergeFrom(const SimClock& o) {
    io_s += o.io_s;
    cpu_s += o.cpu_s;
  }
};

/// The disk-arm model. A read of page p is *sequential* if p immediately
/// follows the previous read (or re-reads it), otherwise *random*. Assembly's
/// elevator pattern benefits automatically: refs sorted by page produce
/// short forward seeks which are charged an interpolated cost.
///
/// Thread safety: Read() serializes on an internal mutex (there is one disk
/// arm; concurrent readers contend for it exactly as real spindles do). The
/// read counters are atomic so statistics can be sampled lock-free.
class DiskModel {
 public:
  DiskModel(const CostModelOptions* timing, SimClock* clock)
      : timing_(timing), clock_(clock) {}

  /// Records a physical read of `page`. Thread-safe.
  void Read(PageId page);

  int64_t reads() const { return seq_reads() + random_reads(); }
  int64_t seq_reads() const {
    return seq_reads_.load(std::memory_order_relaxed);
  }
  int64_t random_reads() const {
    return random_reads_.load(std::memory_order_relaxed);
  }
  PageId position() const {
    MutexLock lock(mu_);
    return position_;
  }

  void Reset() {
    MutexLock lock(mu_);
    seq_reads_.store(0, std::memory_order_relaxed);
    random_reads_.store(0, std::memory_order_relaxed);
    position_ = kInvalidPage;
  }

 private:
  const CostModelOptions* timing_;
  /// The store clock. Its io_s is only ever written under mu_ (there is one
  /// disk arm; the charge and the arm movement are one atomic event).
  SimClock* clock_ PT_GUARDED_BY(mu_);
  mutable Mutex mu_{lock_rank::kDiskModel};
  PageId position_ GUARDED_BY(mu_) = kInvalidPage;
  std::atomic<int64_t> seq_reads_{0};
  std::atomic<int64_t> random_reads_{0};
};

}  // namespace oodb

#endif  // OODB_STORAGE_DISK_MODEL_H_
