// Mutation self-tests for the static verifier: seed a specific corruption
// into an otherwise-valid plan or memo, and assert the verifier rejects it
// with the *right* invariant id and an operator path. Each corruption
// models a real optimizer-bug class (rebound assembly steps, swapped join
// inputs, phantom sort orders, illegal Exchange plants, cost drift). The
// un-mutated baseline must verify clean first, so every test is also a
// false-positive probe.
#include <gtest/gtest.h>

#include <cmath>

#include "src/exec/tuple.h"
#include "src/physical/enforcers.h"
#include "src/physical/impl_rules.h"
#include "src/rules/transformations.h"
#include "src/verify/verify.h"
#include "src/volcano/search.h"
#include "tests/test_util.h"

namespace oodb {
namespace {

/// A deep copy of a plan with mutable access to every node, preorder.
/// PlanNodePtr is shared_ptr<const ...>, so mutation requires cloning.
struct MutablePlan {
  std::shared_ptr<PlanNode> root;
  std::vector<PlanNode*> nodes;  // preorder; nodes[0] == root.get()

  PlanNode* Find(PhysOpKind kind) {
    for (PlanNode* n : nodes) {
      if (n->op.kind == kind) return n;
    }
    return nullptr;
  }
};

std::shared_ptr<PlanNode> CloneRec(const PlanNode& node,
                                   std::vector<PlanNode*>* out) {
  auto copy = std::make_shared<PlanNode>(node);
  out->push_back(copy.get());
  copy->children.clear();
  for (const PlanNodePtr& c : node.children) {
    copy->children.push_back(CloneRec(*c, out));
  }
  return copy;
}

MutablePlan Clone(const PlanNode& plan) {
  MutablePlan out;
  out.root = CloneRec(plan, &out.nodes);
  return out;
}

class VerifyMutationTest : public ::testing::Test {
 protected:
  VerifyMutationTest() : db_(MakePaperCatalog()) {
    ctx_.catalog = &db_.catalog;
  }

  /// File Scan Cities:c -> Assembly{c.mayor:m} -> Filter m.name=="Joe",
  /// hand-built with exact properties and additive costs so every mutation
  /// flips exactly one invariant. Binding ids are remembered in c_/m_.
  std::shared_ptr<PlanNode> BuildCityChain() {
    c_ = ctx_.bindings.AddGet("c", db_.city);
    m_ = ctx_.bindings.AddMat("c.mayor", db_.person, c_, db_.city_mayor);

    PhysicalOp scan;
    scan.kind = PhysOpKind::kFileScan;
    scan.coll = CollectionId::Set("Cities", db_.city);
    scan.binding = c_;
    LogicalProps scan_props;
    scan_props.scope = BindingSet::Of(c_);
    scan_props.card = 1000;
    scan_props.tuple_bytes = 64;
    PhysProps scan_delivered;
    scan_delivered.in_memory = BindingSet::Of(c_);
    PlanNodePtr plan = PlanNode::Make(scan, {}, scan_props, scan_delivered,
                                      Cost{1.0, 0.5});

    PhysicalOp assemble;
    assemble.kind = PhysOpKind::kAssembly;
    assemble.mats = {MatStep{c_, db_.city_mayor, m_}};
    LogicalProps asm_props = scan_props;
    asm_props.scope.Add(m_);
    asm_props.tuple_bytes = 128;
    PhysProps asm_delivered;
    asm_delivered.in_memory = asm_props.scope;
    plan = PlanNode::Make(assemble, {plan}, asm_props, asm_delivered,
                          Cost{2.0, 0.25});

    PhysicalOp filter;
    filter.kind = PhysOpKind::kFilter;
    filter.pred = ScalarExpr::AttrEqStr(m_, db_.person_name, "Joe");
    LogicalProps f_props = asm_props;
    f_props.card = 10;
    plan = PlanNode::Make(filter, {plan}, f_props, asm_delivered,
                          Cost{0.0, 0.125});
    return std::const_pointer_cast<PlanNode>(plan);
  }

  void ExpectClean(const PlanNode& plan) {
    VerifyReport report = VerifyPlanReport(plan, ctx_);
    ASSERT_TRUE(report.ok()) << "baseline not clean:\n" << report.ToString();
  }

  /// Asserts the plan is rejected with `id` and that some violation with
  /// that id carries a non-empty operator path.
  void ExpectViolation(const PlanNode& plan, const char* id) {
    VerifyReport report = VerifyPlanReport(plan, ctx_);
    ASSERT_FALSE(report.ok()) << "mutation not detected (want " << id << ")";
    EXPECT_TRUE(report.Has(id)) << "want [" << id << "], got:\n"
                                << report.ToString();
    for (const VerifyViolation& v : report.violations()) {
      if (v.invariant == id) {
        EXPECT_FALSE(v.path.empty());
        EXPECT_FALSE(v.detail.empty());
      }
    }
    // The Status projection must carry a diagnostic, not a bare code.
    EXPECT_FALSE(VerifyPlan(plan, ctx_).ok());
  }

  PaperDb db_;
  QueryContext ctx_;
  BindingId c_ = kInvalidBinding;
  BindingId m_ = kInvalidBinding;
};

// --- structural mutations on the hand-built chain ---

TEST_F(VerifyMutationTest, BaselineChainIsClean) {
  ExpectClean(*BuildCityChain());
}

TEST_F(VerifyMutationTest, AssemblyStepFieldRebindIsRejected) {
  MutablePlan p = Clone(*BuildCityChain());
  ExpectClean(*p.root);
  // The step now claims to load the mayor via city.country — a different
  // derivation than the binding table records for m.
  p.Find(PhysOpKind::kAssembly)->op.mats[0].field = db_.city_country;
  ExpectViolation(*p.root, invariant::kPlanMatStep);
}

TEST_F(VerifyMutationTest, SplicedOutAssemblyIsRejected) {
  MutablePlan p = Clone(*BuildCityChain());
  ExpectClean(*p.root);
  // Drop the Assembly: the Filter now reads m.name with m never loaded.
  PlanNode* filter = p.Find(PhysOpKind::kFilter);
  PlanNode* assembly = p.Find(PhysOpKind::kAssembly);
  filter->children[0] = assembly->children[0];
  VerifyReport report = VerifyPlanReport(*p.root, ctx_);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.Has(invariant::kPlanMemory)) << report.ToString();
  EXPECT_TRUE(report.Has(invariant::kPlanLoad)) << report.ToString();
}

TEST_F(VerifyMutationTest, OutOfScopePredicateRebindIsRejected) {
  MutablePlan p = Clone(*BuildCityChain());
  ExpectClean(*p.root);
  BindingId stranger = ctx_.bindings.AddGet("stranger", db_.person);
  p.Find(PhysOpKind::kFilter)->op.pred =
      ScalarExpr::AttrEqStr(stranger, db_.person_name, "Joe");
  ExpectViolation(*p.root, invariant::kExprScope);
}

TEST_F(VerifyMutationTest, CmpTypeMismatchInPlanPredicateIsRejected) {
  MutablePlan p = Clone(*BuildCityChain());
  ExpectClean(*p.root);
  p.Find(PhysOpKind::kFilter)->op.pred = ScalarExpr::Cmp(
      CmpOp::kEq, ScalarExpr::Attr(m_, db_.person_name),
      ScalarExpr::Const(Value::Int(42)));
  ExpectViolation(*p.root, invariant::kExprCmpType);
}

TEST_F(VerifyMutationTest, NullFilterPredicateIsRejected) {
  MutablePlan p = Clone(*BuildCityChain());
  ExpectClean(*p.root);
  p.Find(PhysOpKind::kFilter)->op.pred = nullptr;
  ExpectViolation(*p.root, invariant::kPlanOpField);
}

TEST_F(VerifyMutationTest, WrongArityIsRejected) {
  MutablePlan p = Clone(*BuildCityChain());
  ExpectClean(*p.root);
  p.Find(PhysOpKind::kFilter)->children.clear();
  ExpectViolation(*p.root, invariant::kPlanArity);
}

TEST_F(VerifyMutationTest, ScopeDriftIsRejected) {
  MutablePlan p = Clone(*BuildCityChain());
  ExpectClean(*p.root);
  // The scan's scope gains a binding no input or argument justifies.
  p.Find(PhysOpKind::kFileScan)->logical.scope.Add(m_);
  ExpectViolation(*p.root, invariant::kPlanScope);
}

TEST_F(VerifyMutationTest, PhantomSortClaimIsRejected) {
  MutablePlan p = Clone(*BuildCityChain());
  ExpectClean(*p.root);
  // A file scan reads members in page order; it cannot deliver a sort.
  p.Find(PhysOpKind::kFileScan)->delivered.sort =
      SortSpec{c_, db_.city_name};
  ExpectViolation(*p.root, invariant::kPlanSort);
}

TEST_F(VerifyMutationTest, SortKeyMismatchIsRejected) {
  MutablePlan p = Clone(*BuildCityChain());
  ExpectClean(*p.root);
  // Plant a correct Sort enforcer on top, then claim a different order
  // than the operator's key establishes.
  PhysicalOp sort;
  sort.kind = PhysOpKind::kSort;
  sort.sort = SortSpec{c_, db_.city_name};
  PhysProps delivered = p.root->delivered;
  delivered.sort = sort.sort;
  PlanNodePtr sorted = PlanNode::Make(sort, {p.root}, p.root->logical,
                                      delivered, Cost{0.5, 0.5});
  MutablePlan s = Clone(*sorted);
  ExpectClean(*s.root);
  s.Find(PhysOpKind::kSort)->delivered.sort = SortSpec{c_, db_.city_population};
  ExpectViolation(*s.root, invariant::kPlanSort);
}

// --- cost mutations ---

TEST_F(VerifyMutationTest, TotalCostDriftIsRejected) {
  MutablePlan p = Clone(*BuildCityChain());
  ExpectClean(*p.root);
  p.root->total_cost.io_s += 1.0;
  ExpectViolation(*p.root, invariant::kPlanCostTotal);
}

TEST_F(VerifyMutationTest, NonFiniteCostIsRejected) {
  MutablePlan p = Clone(*BuildCityChain());
  ExpectClean(*p.root);
  p.Find(PhysOpKind::kAssembly)->local_cost.cpu_s =
      std::numeric_limits<double>::quiet_NaN();
  ExpectViolation(*p.root, invariant::kPlanCostFinite);
}

TEST_F(VerifyMutationTest, NegativeLocalCostIsRejected) {
  MutablePlan p = Clone(*BuildCityChain());
  ExpectClean(*p.root);
  PlanNode* scan = p.Find(PhysOpKind::kFileScan);
  scan->local_cost.io_s = -1.0;
  scan->total_cost.io_s -= 2.0;  // keep additivity; isolate the sign check
  p.Find(PhysOpKind::kAssembly)->total_cost.io_s -= 2.0;
  p.Find(PhysOpKind::kFilter)->total_cost.io_s -= 2.0;
  ExpectViolation(*p.root, invariant::kPlanCostNegative);
}

// --- delivered-property mutations ---

TEST_F(VerifyMutationTest, UnloadedInMemoryClaimIsRejected) {
  MutablePlan p = Clone(*BuildCityChain());
  ExpectClean(*p.root);
  // The scan claims the mayor is in memory; nothing below loads it (and it
  // is not even in the scan's scope).
  p.Find(PhysOpKind::kFileScan)->delivered.in_memory.Add(m_);
  ExpectViolation(*p.root, invariant::kPlanMemory);
}

TEST_F(VerifyMutationTest, RefBindingInMemoryClaimIsRejected) {
  // An Unnest target is a bare reference: not loadable, so claiming it
  // present-in-memory is meaningless. Build Scan Tasks -> Unnest members.
  BindingId t = ctx_.bindings.AddGet("t", db_.task);
  BindingId r =
      ctx_.bindings.AddUnnest("t.members", db_.employee, t,
                              db_.task_team_members);
  PhysicalOp scan;
  scan.kind = PhysOpKind::kFileScan;
  scan.coll = CollectionId::Set("Tasks", db_.task);
  scan.binding = t;
  LogicalProps sp;
  sp.scope = BindingSet::Of(t);
  sp.card = 100;
  sp.tuple_bytes = 64;
  PhysProps sd;
  sd.in_memory = BindingSet::Of(t);
  PlanNodePtr plan = PlanNode::Make(scan, {}, sp, sd, Cost{1.0, 0.5});

  PhysicalOp unnest;
  unnest.kind = PhysOpKind::kAlgUnnest;
  unnest.source = t;
  unnest.field = db_.task_team_members;
  unnest.target = r;
  LogicalProps up = sp;
  up.scope.Add(r);
  up.card = 300;
  PlanNodePtr unnested =
      PlanNode::Make(unnest, {plan}, up, sd, Cost{0.0, 0.25});
  ExpectClean(*unnested);

  MutablePlan p = Clone(*unnested);
  p.Find(PhysOpKind::kAlgUnnest)->delivered.in_memory.Add(r);
  ExpectViolation(*p.root, invariant::kPlanMemoryScope);

  // And rebinding the unnest to a non-set field breaks its derivation.
  MutablePlan q = Clone(*unnested);
  q.Find(PhysOpKind::kAlgUnnest)->op.field = db_.task_name;
  ExpectViolation(*q.root, invariant::kPlanUnnest);
}

// --- fused-filter mutations ---

TEST_F(VerifyMutationTest, FusedFilterCompileDriftIsRejected) {
  // The executor fuses a collapsed Filter chain into the scan below only
  // after checking that the *compiled* steps — whose operands may have been
  // re-oriented during analysis — still reconstruct the chain's conjunct
  // multiset (VerifyFusedConjuncts against ReconstructedPredicate). Baseline
  // first: a clean compile of a chain containing a reversed conjunct passes.
  // Then each seeded drift a compiler bug could plausibly introduce must be
  // rejected with the fusion invariant.
  BindingId c = ctx_.bindings.AddGet("c", db_.city);
  std::vector<ScalarExprPtr> chain = {
      ScalarExpr::AttrCmpInt(c, db_.city_population, CmpOp::kGt, 1000),
      // Written const-cmp-attr: analysis reverses the operands into a
      // canonical attr-cmp-const step; reconstruction must restore the
      // source orientation or the structural match fails.
      ScalarExpr::Cmp(CmpOp::kLt, ScalarExpr::Const(Value::Int(500)),
                      ScalarExpr::Attr(c, db_.city_population)),
  };
  std::vector<ScalarExprPtr> conjuncts;
  for (const ScalarExprPtr& p : chain) {
    for (ScalarExprPtr& e : ScalarExpr::SplitConjuncts(p)) {
      conjuncts.push_back(std::move(e));
    }
  }
  FilterProgram prog =
      FilterProgram::Analyze(ScalarExpr::CombineConjuncts(std::move(conjuncts)));
  ASSERT_TRUE(prog.specialized());
  EXPECT_TRUE(VerifyFusedConjuncts(chain, prog.ReconstructedPredicate()).ok());

  auto expect_fusion_violation = [&](const ScalarExprPtr& fused) {
    Status s = VerifyFusedConjuncts(chain, fused);
    ASSERT_FALSE(s.ok()) << "fused-filter drift not detected";
    EXPECT_NE(s.message().find(invariant::kPlanFusion), std::string::npos)
        << s.message();
  };

  // The compile dropped a conjunct.
  expect_fusion_violation(chain[0]);

  // A step's constant drifted (1000 -> 1001).
  {
    std::vector<ScalarExprPtr> drifted;
    drifted.push_back(
        ScalarExpr::AttrCmpInt(c, db_.city_population, CmpOp::kGt, 1001));
    drifted.push_back(chain[1]);
    expect_fusion_violation(ScalarExpr::CombineConjuncts(std::move(drifted)));
  }

  // Orientation not restored: the reversed conjunct reconstructed in
  // canonical attr-first form is a rewrite of the chain's conjunct, not a
  // structural match for it.
  {
    std::vector<ScalarExprPtr> reoriented;
    reoriented.push_back(chain[0]);
    reoriented.push_back(
        ScalarExpr::AttrCmpInt(c, db_.city_population, CmpOp::kGt, 500));
    expect_fusion_violation(ScalarExpr::CombineConjuncts(std::move(reoriented)));
  }
}

// --- join mutations ---

TEST_F(VerifyMutationTest, HashJoinMutationsAreRejected) {
  // Cities c (build, has the c.country reference) x Country n (probe, the
  // identified OID population): the legal orientation is n on the BUILD
  // side for ref-vs-OID equality, so build it legally first with n left.
  BindingId c = ctx_.bindings.AddGet("c", db_.city);
  BindingId n = ctx_.bindings.AddGet("n", db_.country);
  auto scan = [&](CollectionId coll, BindingId b, double card) {
    PhysicalOp op;
    op.kind = PhysOpKind::kFileScan;
    op.coll = coll;
    op.binding = b;
    LogicalProps props;
    props.scope = BindingSet::Of(b);
    props.card = card;
    props.tuple_bytes = 64;
    PhysProps delivered;
    delivered.in_memory = BindingSet::Of(b);
    return PlanNode::Make(op, {}, props, delivered, Cost{1.0, 0.5});
  };
  // Countries have no named set in the catalog, only a type extent.
  PlanNodePtr left = scan(CollectionId::Extent(db_.country), n, 50);
  PlanNodePtr right = scan(CollectionId::Set("Cities", db_.city), c, 1000);
  PhysicalOp join;
  join.kind = PhysOpKind::kHybridHashJoin;
  join.pred = ScalarExpr::Cmp(CmpOp::kEq, ScalarExpr::Self(n),
                              ScalarExpr::Attr(c, db_.city_country));
  LogicalProps jp;
  jp.scope = BindingSet::Of(n).Union(BindingSet::Of(c));
  jp.card = 1000;
  jp.tuple_bytes = 128;
  PhysProps jd;
  jd.in_memory = jp.scope;
  PlanNodePtr joined =
      PlanNode::Make(join, {left, right}, jp, jd, Cost{0.0, 2.0});
  ExpectClean(*joined);

  // Swapping the children puts the OID population on the probe side — the
  // classic "who builds" bug hybrid hash join cannot execute correctly.
  MutablePlan swapped = Clone(*joined);
  std::swap(swapped.root->children[0], swapped.root->children[1]);
  ExpectViolation(*swapped.root, invariant::kPlanHashJoinOrientation);

  // A non-equality conjunct cannot be hashed.
  MutablePlan ranged = Clone(*joined);
  ranged.root->op.pred =
      ScalarExpr::Cmp(CmpOp::kLt, ScalarExpr::Attr(n, db_.country_name),
                      ScalarExpr::Attr(c, db_.city_name));
  ExpectViolation(*ranged.root, invariant::kPlanHashJoinPred);

  // Overlapping child scopes: the "join" reads the same table twice.
  MutablePlan overlap = Clone(*joined);
  overlap.root->op.kind = PhysOpKind::kNestedLoops;
  overlap.root->op.pred = ScalarExpr::Const(Value::Int(1));
  overlap.root->children[0] = overlap.root->children[1];
  overlap.root->logical.scope = BindingSet::Of(c);
  overlap.root->delivered.in_memory = BindingSet::Of(c);
  ExpectViolation(*overlap.root, invariant::kPlanJoinOverlap);
}

// --- Exchange mutations ---

TEST_F(VerifyMutationTest, ExchangeMutationsAreRejected) {
  std::shared_ptr<PlanNode> chain = BuildCityChain();
  PhysicalOp ex;
  ex.kind = PhysOpKind::kExchange;
  ex.dop = 4;
  ex.partition_binding = c_;
  PhysProps delivered = chain->delivered;
  delivered.sort = SortSpec{};
  // Exchange local cost may be negative on cpu (the parallel speedup); keep
  // it simple and additive here.
  PlanNodePtr root = PlanNode::Make(ex, {chain}, chain->logical, delivered,
                                    Cost{0.0, -0.05});
  ExpectClean(*root);

  // dop < 2 is not an exchange.
  MutablePlan p1 = Clone(*root);
  p1.Find(PhysOpKind::kExchange)->op.dop = 1;
  ExpectViolation(*p1.root, invariant::kPlanExchange);

  // Partitioning on a binding that is not the driver scan's.
  MutablePlan p2 = Clone(*root);
  p2.Find(PhysOpKind::kExchange)->op.partition_binding = m_;
  ExpectViolation(*p2.root, invariant::kPlanExchange);

  // Exchange below a Filter: only the root (or a root Sort chain) is legal.
  MutablePlan p3 = Clone(*root);
  PhysicalOp filter;
  filter.kind = PhysOpKind::kFilter;
  filter.pred = ScalarExpr::AttrEqStr(c_, db_.city_name, "Lyon");
  PlanNodePtr wrapped =
      PlanNode::Make(filter, {p3.root}, p3.root->logical, p3.root->delivered,
                     Cost{0.0, 0.01});
  ExpectViolation(*wrapped, invariant::kPlanExchange);

  // Exchange over an ordered input destroys a paid-for delivery.
  MutablePlan p4 = Clone(*root);
  PhysicalOp sort;
  sort.kind = PhysOpKind::kSort;
  sort.sort = SortSpec{c_, db_.city_name};
  PlanNode* ex_node = p4.Find(PhysOpKind::kExchange);
  PhysProps sorted_delivery = ex_node->children[0]->delivered;
  sorted_delivery.sort = sort.sort;
  ex_node->children[0] =
      PlanNode::Make(sort, {ex_node->children[0]}, ex_node->children[0]->logical,
                     sorted_delivery, Cost{0.5, 0.5});
  ExpectViolation(*p4.root, invariant::kPlanExchange);
}

// --- order- and limit-property mutations ---

TEST_F(VerifyMutationTest, MultiKeyOrderMutationsAreRejected) {
  std::shared_ptr<PlanNode> chain = BuildCityChain();
  PhysicalOp sort;
  sort.kind = PhysOpKind::kSort;
  sort.sort = SortSpec({SortKey{c_, db_.city_name, false},
                        SortKey{c_, db_.city_population, true}});
  PhysProps delivered = chain->delivered;
  delivered.sort = sort.sort;
  PlanNodePtr root = PlanNode::Make(sort, {chain}, chain->logical, delivered,
                                    Cost{0.5, 0.5});
  ExpectClean(*root);

  // Direction flip: the claim promises the minor key ascending while the
  // operator sorts it descending.
  MutablePlan p1 = Clone(*root);
  p1.root->delivered.sort.keys[1].desc = false;
  ExpectViolation(*p1.root, invariant::kPlanSort);

  // Non-prefix claim: the minor key alone is not established.
  MutablePlan p2 = Clone(*root);
  p2.root->delivered.sort = SortSpec{c_, db_.city_population, true};
  ExpectViolation(*p2.root, invariant::kPlanSort);

  // Partial sort assuming a leading-key run structure the input (a page-
  // order file scan chain) does not deliver.
  MutablePlan p3 = Clone(*root);
  p3.Find(PhysOpKind::kSort)->op.sort_prefix = 1;
  ExpectViolation(*p3.root, invariant::kPlanSort);
}

TEST_F(VerifyMutationTest, TopKMutationsAreRejected) {
  std::shared_ptr<PlanNode> chain = BuildCityChain();
  PhysicalOp topk;
  topk.kind = PhysOpKind::kTopK;
  topk.sort = SortSpec{c_, db_.city_name};
  topk.limit = 10;
  PhysProps delivered = chain->delivered;
  delivered.sort = topk.sort;
  delivered.limit = 10;
  LogicalProps props = chain->logical;
  props.card = 10;
  PlanNodePtr root =
      PlanNode::Make(topk, {chain}, props, delivered, Cost{0.1, 0.1});
  ExpectClean(*root);

  // A top-k with no positive bound is an unbounded heap.
  MutablePlan p1 = Clone(*root);
  p1.Find(PhysOpKind::kTopK)->op.limit = 0;
  ExpectViolation(*p1.root, invariant::kPlanTopK);

  // Claimed row limit differs from the operator's bound.
  MutablePlan p2 = Clone(*root);
  p2.root->delivered.limit = 5;
  ExpectViolation(*p2.root, invariant::kPlanTopK);

  // A phantom limit on an operator that neither truncates nor relays.
  MutablePlan p3 = Clone(*root);
  p3.Find(PhysOpKind::kFilter)->delivered.limit = 10;
  ExpectViolation(*p3.root, invariant::kPlanTopK);
}

TEST_F(VerifyMutationTest, MergeExchangeMutationsAreRejected) {
  std::shared_ptr<PlanNode> chain = BuildCityChain();
  // Worker plan sorts its slice; the merging exchange interleaves the
  // sorted streams back into one.
  PhysicalOp sort;
  sort.kind = PhysOpKind::kSort;
  sort.sort = SortSpec{c_, db_.city_name};
  PhysProps sorted = chain->delivered;
  sorted.sort = sort.sort;
  PlanNodePtr worker =
      PlanNode::Make(sort, {chain}, chain->logical, sorted, Cost{0.5, 0.5});

  PhysicalOp ex;
  ex.kind = PhysOpKind::kExchange;
  ex.dop = 4;
  ex.partition_binding = c_;
  ex.merge = true;
  ex.sort = sort.sort;
  PlanNodePtr root =
      PlanNode::Make(ex, {worker}, worker->logical, sorted, Cost{0.0, -0.05});
  ExpectClean(*root);

  // Merge keys the worker plan does not deliver sorted.
  MutablePlan p1 = Clone(*root);
  p1.Find(PhysOpKind::kExchange)->op.sort =
      SortSpec{c_, db_.city_population};
  ExpectViolation(*p1.root, invariant::kPlanExchange);

  // A merging exchange with no merge keys has nothing to merge by.
  MutablePlan p2 = Clone(*root);
  p2.Find(PhysOpKind::kExchange)->op.sort = SortSpec{};
  ExpectViolation(*p2.root, invariant::kPlanExchange);

  // Demoted to a plain exchange, the same plant destroys the worker-paid
  // order (and the sort claim above it becomes phantom).
  MutablePlan p3 = Clone(*root);
  p3.Find(PhysOpKind::kExchange)->op.merge = false;
  ExpectViolation(*p3.root, invariant::kPlanExchange);
}

// --- index-scan mutations (on a real optimized plan) ---

TEST_F(VerifyMutationTest, IndexScanMutationsAreRejected) {
  // Paper query 2 collapses to an index scan over cities_mayor_name.
  QueryContext ctx;
  ctx.catalog = &db_.catalog;
  OptimizedQuery q = testing::MustOptimize(2, db_, &ctx);
  ASSERT_GE(CountOps(*q.plan, PhysOpKind::kIndexScan), 1);
  ctx_ = std::move(ctx);  // mutations verify against the query's context

  // Key predicate compares a non-key field: the index returns wrong rows.
  MutablePlan p1 = Clone(*q.plan);
  PlanNode* scan = p1.Find(PhysOpKind::kIndexScan);
  ASSERT_NE(scan, nullptr);
  const ScalarExpr& key = *scan->op.index_pred;
  BindingId key_binding =
      key.children()[0]->kind() == ScalarExpr::Kind::kAttr
          ? key.children()[0]->binding()
          : key.children()[1]->binding();
  p1.Find(PhysOpKind::kIndexScan)->op.index_pred =
      ScalarExpr::AttrEqInt(key_binding, db_.person_age, 44);
  ExpectViolation(*p1.root, invariant::kPlanIndex);

  // Unknown index name.
  MutablePlan p2 = Clone(*q.plan);
  p2.Find(PhysOpKind::kIndexScan)->op.index_name = "no_such_index";
  ExpectViolation(*p2.root, invariant::kPlanIndex);
}

// --- memo mutations ---

class MemoMutationTest : public ::testing::Test {
 protected:
  MemoMutationTest() : db_(MakePaperCatalog()) { ctx_.catalog = &db_.catalog; }

  /// Runs the full search for paper query `n`, leaving the memo (with
  /// winners) in engine-owned state exposed for corruption.
  void Search(int n) {
    Result<LogicalExprPtr> logical = BuildPaperQuery(n, db_, &ctx_);
    ASSERT_TRUE(logical.ok()) << logical.status();
    cm_ = std::make_unique<CostModel>(CostModelOptions{});
    engine_ = std::make_unique<SearchEngine>(&ctx_, cm_.get(), &opts_);
    for (auto& rule : MakeDefaultTransformations()) {
      engine_->AddTransformation(std::move(rule));
    }
    for (auto& rule : MakeDefaultImplRules()) {
      engine_->AddImplRule(std::move(rule));
    }
    for (auto& enf : MakeDefaultEnforcers()) {
      engine_->AddEnforcer(std::move(enf));
    }
    SearchStats stats;
    Result<PlanNodePtr> plan =
        engine_->Optimize(**logical, PhysProps{}, &stats);
    ASSERT_TRUE(plan.ok()) << plan.status();
    VerifyReport baseline = VerifyMemoReport(engine_->memo());
    ASSERT_TRUE(baseline.ok()) << baseline.ToString();
  }

  Memo& memo() { return engine_->memo(); }

  void ExpectMemoViolation(const char* id) {
    VerifyReport report = VerifyMemoReport(memo());
    ASSERT_FALSE(report.ok()) << "memo corruption not detected (want " << id
                              << ")";
    EXPECT_TRUE(report.Has(id)) << "want [" << id << "], got:\n"
                                << report.ToString();
    EXPECT_FALSE(VerifyMemo(memo()).ok());
  }

  PaperDb db_;
  QueryContext ctx_;
  OptimizerOptions opts_;
  std::unique_ptr<CostModel> cm_;
  std::unique_ptr<SearchEngine> engine_;
};

TEST_F(MemoMutationTest, DanglingChildGroupIsRejected) {
  Search(2);
  for (MExprId id = 0; id < memo().num_mexprs(); ++id) {
    if (!memo().mexpr(id).children.empty()) {
      memo().mutable_mexpr(id).children[0] = 9999;
      break;
    }
  }
  ExpectMemoViolation(invariant::kMemoDanglingGroup);
}

TEST_F(MemoMutationTest, GroupScopeDriftIsRejected) {
  Search(2);
  memo().mutable_group(0).props.scope.Add(63);
  ExpectMemoViolation(invariant::kMemoScopeDrift);
}

TEST_F(MemoMutationTest, NegativeCardinalityIsRejected) {
  Search(2);
  memo().mutable_group(0).props.card = -5.0;
  ExpectMemoViolation(invariant::kMemoCard);
}

TEST_F(MemoMutationTest, InProgressWinnerIsRejected) {
  Search(2);
  bool mutated = false;
  for (GroupId g = 0; g < memo().num_raw_groups() && !mutated; ++g) {
    if (memo().Find(g) != g) continue;
    Group& group = memo().mutable_group(g);
    if (!group.winners.empty()) {
      group.winners.begin()->second.in_progress = true;
      mutated = true;
    }
  }
  ASSERT_TRUE(mutated) << "search left no winners to corrupt";
  ExpectMemoViolation(invariant::kMemoWinnerInProgress);
}

TEST_F(MemoMutationTest, NonFiniteWinnerBoundIsRejected) {
  Search(2);
  bool mutated = false;
  for (GroupId g = 0; g < memo().num_raw_groups() && !mutated; ++g) {
    if (memo().Find(g) != g) continue;
    Group& group = memo().mutable_group(g);
    if (!group.winners.empty()) {
      group.winners.begin()->second.lower_bound =
          std::numeric_limits<double>::infinity();
      mutated = true;
    }
  }
  ASSERT_TRUE(mutated);
  ExpectMemoViolation(invariant::kMemoWinnerCost);
}

TEST_F(MemoMutationTest, RekeyedWinnerIsRejected) {
  Search(2);
  // File a winner under a stricter requirement than its plan delivers:
  // require binding 63 in memory, which nothing delivers.
  bool mutated = false;
  for (GroupId g = 0; g < memo().num_raw_groups() && !mutated; ++g) {
    if (memo().Find(g) != g) continue;
    Group& group = memo().mutable_group(g);
    for (auto& [required, winner] : group.winners) {
      if (winner.plan == nullptr) continue;
      PhysProps stricter = required;
      stricter.in_memory.Add(63);
      Winner moved = winner;
      group.winners.erase(required);
      group.winners.emplace(stricter, std::move(moved));
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated) << "search left no winner plans to corrupt";
  ExpectMemoViolation(invariant::kMemoWinnerProps);
}

TEST_F(MemoMutationTest, WinnerCostDriftIsRejected) {
  Search(1);
  bool mutated = false;
  for (GroupId g = 0; g < memo().num_raw_groups() && !mutated; ++g) {
    if (memo().Find(g) != g) continue;
    Group& group = memo().mutable_group(g);
    for (auto& [required, winner] : group.winners) {
      if (winner.plan == nullptr) continue;
      // A winner that claims a cheaper total than its inputs' lower bound:
      // cost corruption the branch-and-bound would propagate everywhere.
      auto cheat = std::make_shared<PlanNode>(*winner.plan);
      cheat->total_cost.io_s = 0.0;
      cheat->total_cost.cpu_s = 0.0;
      if (cheat->children.empty() && cheat->local_cost.io_s == 0.0 &&
          cheat->local_cost.cpu_s == 0.0) {
        continue;  // a genuinely free leaf would not drift; pick another
      }
      winner.plan = cheat;
      mutated = true;
      break;
    }
  }
  ASSERT_TRUE(mutated);
  ExpectMemoViolation(invariant::kMemoWinnerCost);
}

}  // namespace
}  // namespace oodb
