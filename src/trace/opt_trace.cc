#include "src/trace/opt_trace.h"

#include <cstdio>
#include <sstream>

#include "src/common/strings.h"

namespace oodb {

const char* OptEventKindName(OptEventKind kind) {
  switch (kind) {
    case OptEventKind::kRuleFired:
      return "rule-fired";
    case OptEventKind::kGroupExplored:
      return "group-explored";
    case OptEventKind::kWinnerReplaced:
      return "winner-replaced";
    case OptEventKind::kBranchPruned:
      return "branch-pruned";
    case OptEventKind::kEnforcerInserted:
      return "enforcer-inserted";
    case OptEventKind::kVerifyOutcome:
      return "verify-outcome";
  }
  return "unknown";
}

OptTrace::OptTrace(size_t capacity) : capacity_(capacity > 0 ? capacity : 1) {
  ring_.reserve(capacity_);
}

void OptTrace::Record(OptEvent event) {
  ++recorded_;
  ++counts_[static_cast<size_t>(event.kind)];
  if (size_ < capacity_) {
    ring_.push_back(std::move(event));
    ++size_;
  } else {
    ring_[next_] = std::move(event);
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<OptEvent> OptTrace::Events() const {
  std::vector<OptEvent> out;
  out.reserve(size_);
  // Until the ring fills, events sit in insertion order from slot 0; once
  // full, `next_` is the oldest retained slot.
  for (size_t i = 0; i < size_; ++i) {
    out.push_back(size_ < capacity_ ? ring_[i]
                                    : ring_[(next_ + i) % capacity_]);
  }
  return out;
}

std::string OptTrace::ToText() const {
  std::ostringstream os;
  os << "optimizer trace: " << recorded_ << " events";
  if (dropped() > 0) os << " (" << dropped() << " dropped)";
  os << "\n";
  for (const OptEvent& e : Events()) {
    os << "  " << OptEventKindName(e.kind);
    if (e.rule != nullptr && e.rule[0] != '\0') os << " " << e.rule;
    if (e.group >= 0) os << " g" << e.group;
    if (e.mexpr >= 0) os << " #" << e.mexpr;
    if (e.cost >= 0.0) os << " cost=" << FormatDouble(e.cost, 6);
    if (e.op != nullptr && e.op[0] != '\0') os << " " << e.op;
    if (!e.detail.empty()) os << " " << e.detail;
    os << "\n";
  }
  return os.str();
}

namespace {

void AppendJsonString(const std::string& s, std::ostringstream& os) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string OptTrace::ToJson() const {
  std::ostringstream os;
  os << "{\"recorded\":" << recorded_ << ",\"dropped\":" << dropped()
     << ",\"counts\":{";
  for (int k = 0; k < kNumOptEventKinds; ++k) {
    if (k > 0) os << ",";
    AppendJsonString(OptEventKindName(static_cast<OptEventKind>(k)), os);
    os << ":" << counts_[k];
  }
  os << "},\"events\":[";
  bool first = true;
  for (const OptEvent& e : Events()) {
    if (!first) os << ",";
    first = false;
    os << "{\"kind\":";
    AppendJsonString(OptEventKindName(e.kind), os);
    if (e.rule != nullptr && e.rule[0] != '\0') {
      os << ",\"rule\":";
      AppendJsonString(e.rule, os);
    }
    if (e.group >= 0) os << ",\"group\":" << e.group;
    if (e.mexpr >= 0) os << ",\"mexpr\":" << e.mexpr;
    if (e.cost >= 0.0) os << ",\"cost\":" << FormatDouble(e.cost, 9);
    if (e.op != nullptr && e.op[0] != '\0') {
      os << ",\"op\":";
      AppendJsonString(e.op, os);
    }
    if (!e.detail.empty()) {
      os << ",\"detail\":";
      AppendJsonString(e.detail, os);
    }
    os << "}";
  }
  os << "]}";
  return os.str();
}

void OptTrace::Clear() {
  ring_.clear();
  next_ = 0;
  size_ = 0;
  recorded_ = 0;
  for (int64_t& c : counts_) c = 0;
}

}  // namespace oodb
