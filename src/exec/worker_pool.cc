#include "src/exec/worker_pool.h"

#include <utility>

namespace oodb {

WorkerPool& WorkerPool::Instance() {
  static WorkerPool pool;
  return pool;
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(fn));
    if (idle_ == 0) threads_.emplace_back(&WorkerPool::Loop, this);
  }
  cv_.notify_one();
}

void WorkerPool::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    ++idle_;
    cv_.wait(lock, [&] { return !tasks_.empty() || stop_; });
    --idle_;
    if (stop_) return;
    std::function<void()> task = std::move(tasks_.front());
    tasks_.pop_front();
    lock.unlock();
    task();
    lock.lock();
  }
}

}  // namespace oodb
