// The greedy, ObjectStore-style baseline planner (paper §4 "Heuristic- vs
// Cost-Based Optimization"): a fixed strategy that exploits *every*
// available index without cost comparison — an index scan for the root
// collection when any predicate matches an index, and an index-scan + hash
// join for any materialize whose target has a usable index; everything else
// is pointer-chased with assembly. Plans are costed with the same cost
// formulas as the cost-based optimizer so anticipated times are comparable,
// but no alternatives are ever weighed (Figure 13 / Table 3).
#ifndef OODB_BASELINE_GREEDY_H_
#define OODB_BASELINE_GREEDY_H_

#include "src/optimizer.h"

namespace oodb {

/// The greedy planner. Supports the linear query shapes of the paper's
/// experiments: a single Get under any interleaving of Unnest / Mat /
/// Select, optionally topped by a Project. Queries with explicit joins are
/// rejected (the strategy it models had no general join planning).
class GreedyOptimizer {
 public:
  explicit GreedyOptimizer(const Catalog* catalog, CostModelOptions cost = {})
      : catalog_(catalog), cost_model_(cost) {}

  /// `required` carries the query-level sort order / limit; greedy enforces
  /// it with a single Sort (or TopK) below the root projection, never
  /// considering order-aware access paths — that contrast with the
  /// cost-based planner is the point of the baseline.
  Result<OptimizedQuery> Optimize(const LogicalExpr& input, QueryContext* ctx,
                                  PhysProps required = {}) const;

 private:
  const Catalog* catalog_;
  CostModel cost_model_;
};

}  // namespace oodb

#endif  // OODB_BASELINE_GREEDY_H_
