// CAD workload (OO7-inspired): deep composition hierarchies — the
// complex-object world the paper's assembly operator was designed for.
// Optimizes and runs exact-match, documentation path-index, component-
// comparison, and full design-tree traversal queries.
#include <cstdio>

#include "src/oodb.h"
#include "src/workloads/oo7.h"

using namespace oodb;

namespace {

void RunQuery(Oo7Db* db, ObjectStore* store, const char* title,
              const std::string& text) {
  std::printf("\n==== %s ====\n%s\n", title, text.c_str());
  QueryContext ctx;
  ctx.catalog = &db->catalog;
  auto logical = ParseAndSimplify(text, &ctx);
  if (!logical.ok()) {
    std::printf("  error: %s\n", logical.status().ToString().c_str());
    return;
  }
  Optimizer optimizer(&db->catalog);
  auto planned = optimizer.Optimize(**logical, &ctx);
  if (!planned.ok()) {
    std::printf("  error: %s\n", planned.status().ToString().c_str());
    return;
  }
  std::printf("plan (est. %.3f s):\n%s", planned->cost.total(),
              PrintPlan(*planned->plan, ctx).c_str());
  auto stats = ExecutePlan(*planned->plan, store, &ctx);
  if (stats.ok()) {
    std::printf("-> %lld rows, %lld pages read, simulated %.3f s\n",
                static_cast<long long>(stats->rows),
                static_cast<long long>(stats->pages_read),
                stats->sim_total_s());
  } else {
    std::printf("  execute error: %s\n", stats.status().ToString().c_str());
  }
}

}  // namespace

int main() {
  Oo7Options options;  // the "small" OO7 configuration
  auto instance = MakeOo7(options);
  if (!instance.ok()) {
    std::fprintf(stderr, "%s\n", instance.status().ToString().c_str());
    return 1;
  }
  Oo7Db* db = instance->db.get();
  ObjectStore* store = instance->store.get();
  std::printf("OO7 'small': %lld objects — %zu modules, %zu assemblies, "
              "%zu composite parts, %zu atomic parts\n",
              static_cast<long long>(store->num_objects()),
              db->modules.size(), db->base_assemblies.size(),
              db->composite_parts.size(), db->atomic_parts.size());

  RunQuery(db, store, "Exact-match atomic part lookup (OO7 Q1)",
           Oo7QueryExactMatch(123));

  RunQuery(db, store, "Composite parts by document title (path index)",
           Oo7QueryByDocTitle("Doc3"));

  RunQuery(db, store,
           "Assemblies using components newer than themselves (OO7 Q5)",
           kOo7QueryNewerComponents);

  RunQuery(db, store, "Full design traversal (OO7 T1 style, 3 unnest levels)",
           kOo7QueryTraversal);

  RunQuery(db, store, "Out-of-date assemblies below build date 10",
           "SELECT b.id, b.buildDate FROM BaseAssembly b IN BaseAssemblies "
           "WHERE b.buildDate < 10;");
  return 0;
}
