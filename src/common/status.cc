#include "src/common/status.h"

namespace oodb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kPlanError:
      return "PlanError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kBudgetExhausted:
      return "BudgetExhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kStorageFault:
      return "StorageFault";
    case StatusCode::kWorkerFault:
      return "WorkerFault";
    case StatusCode::kPlanDrift:
      return "PlanDrift";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace oodb
