# Empty dependencies file for example_cad_traversals.
# This may be replaced when dependencies are built.
