// ZQL[C++]-style user query AST (paper §3 "User Query Language"). This is
// the *user-level* algebra with arbitrarily complex arguments (path
// expressions, nested existential subqueries); the simplification stage
// (simplify.h) translates it into the optimizer's simple-argument algebra.
#ifndef OODB_QUERY_ZQL_AST_H_
#define OODB_QUERY_ZQL_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "src/algebra/expr.h"

namespace oodb {

struct ZqlQuery;
using ZqlQueryPtr = std::shared_ptr<ZqlQuery>;

struct ZqlExpr;
using ZqlExprPtr = std::shared_ptr<ZqlExpr>;

/// A user-level expression.
struct ZqlExpr {
  enum class Kind {
    kPath,    ///< dotted path from a range variable: e.dept.name
    kLiteral, ///< constant
    kCmp,     ///< comparison
    kAnd,
    kOr,
    kNot,
    kExists,  ///< existentially quantified subquery
  };

  Kind kind = Kind::kLiteral;
  std::vector<std::string> path;  // kPath
  Value literal;                  // kLiteral
  CmpOp cmp = CmpOp::kEq;         // kCmp
  std::vector<ZqlExprPtr> children;
  ZqlQueryPtr subquery;           // kExists

  static ZqlExprPtr MakePath(std::vector<std::string> steps);
  /// Splits "e.dept.name" on dots.
  static ZqlExprPtr MakePathDotted(const std::string& dotted);
  static ZqlExprPtr MakeLiteral(Value v);
  static ZqlExprPtr MakeCmp(CmpOp op, ZqlExprPtr l, ZqlExprPtr r);
  static ZqlExprPtr MakeAnd(std::vector<ZqlExprPtr> children);
  static ZqlExprPtr MakeOr(std::vector<ZqlExprPtr> children);
  static ZqlExprPtr MakeNot(ZqlExprPtr child);
  static ZqlExprPtr MakeExists(ZqlQueryPtr subquery);

  std::string ToString() const;
};

/// One FROM-clause range: `Type var IN source`, where source is a named
/// collection or a set-valued path (e.g. `Employee m IN t.team_members`).
struct ZqlRange {
  std::string type_name;
  std::string var;
  bool from_path = false;
  std::string collection;          // when !from_path
  std::vector<std::string> path;   // when from_path

  std::string ToString() const;
};

/// One ORDER BY key: a path plus a per-key direction.
struct ZqlOrderKey {
  ZqlExprPtr path;
  bool desc = false;
};

/// A select-from-where[-order-by][-limit] query.
struct ZqlQuery {
  std::vector<ZqlExprPtr> select;
  std::vector<ZqlRange> from;
  ZqlExprPtr where;  // may be null
  /// Optional ORDER BY keys (major key first). They become a required
  /// *physical* property (sort order) of the plan root, not a logical
  /// operator.
  std::vector<ZqlOrderKey> order_by;
  /// Optional LIMIT row count (0 = none). Like the order, a required
  /// physical property of the plan root (enforced by a bounded-heap TopK).
  int64_t limit = 0;

  /// Source offsets of the ORDER / LIMIT keywords (0 when absent or when
  /// the query was built programmatically) for diagnostics.
  size_t order_by_offset = 0;
  size_t limit_offset = 0;

  std::string ToString() const;
};

}  // namespace oodb

#endif  // OODB_QUERY_ZQL_AST_H_
