// Selectivity estimation (paper §4): "If no index can be used to assist in
// selectivity estimation, selectivity of selection predicates is assumed to
// be 10%". An equality predicate whose attribute is reachable through an
// enabled (possibly path-) index is estimated as 1/distinct-keys.
#ifndef OODB_COST_SELECTIVITY_H_
#define OODB_COST_SELECTIVITY_H_

#include <optional>

#include "src/algebra/expr.h"
#include "src/algebra/logical_op.h"

namespace oodb {

inline constexpr double kDefaultSelectivity = 0.10;
inline constexpr double kDefaultRangeSelectivity = 1.0 / 3.0;

/// Estimates predicate and join selectivities against a catalog.
class SelectivityEstimator {
 public:
  explicit SelectivityEstimator(const QueryContext* ctx) : ctx_(ctx) {}

  /// Selectivity of an arbitrary (possibly conjunctive) predicate:
  /// conjuncts multiply, disjuncts combine by inclusion-exclusion.
  double Estimate(const ScalarExprPtr& pred) const;

  /// Selectivity of a join predicate relating the two sides. `left_card`
  /// and `right_card` are the input cardinalities. Reference-equality
  /// predicates (ref == self) use the referenced population's size.
  double JoinSelectivity(const ScalarExprPtr& pred, double left_card,
                         double right_card) const;

  /// If an enabled index assists `binding`.`field` (directly, or as the key
  /// of a path index whose path matches the binding's Mat-derivation chain
  /// back to a scanned collection), returns it.
  const IndexInfo* FindAssistingIndex(BindingId binding, FieldId field) const;

 private:
  double EstimateConjunct(const ScalarExprPtr& e) const;

  const QueryContext* ctx_;
};

}  // namespace oodb

#endif  // OODB_COST_SELECTIVITY_H_
