// Deterministic random number generator for the synthetic data generator.
// Uses SplitMix64 so datasets are reproducible across platforms regardless
// of the standard library's distribution implementations.
#ifndef OODB_COMMON_RNG_H_
#define OODB_COMMON_RNG_H_

#include <cstdint>

namespace oodb {

/// Deterministic, platform-independent RNG (SplitMix64).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) : state_(seed) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace oodb

#endif  // OODB_COMMON_RNG_H_
