// The four queries of the paper's experimental evaluation (§4), in ZQL text
// form, plus helpers that parse and simplify them against a PaperDb. Shared
// by the test suite and the benchmark harness.
#ifndef OODB_WORKLOADS_PAPER_QUERIES_H_
#define OODB_WORKLOADS_PAPER_QUERIES_H_

#include "src/catalog/paper_catalog.h"
#include "src/query/simplify.h"

namespace oodb {

/// Query 1 (paper Figure 5): name, job name, and department name of all
/// employees who work in a plant in Dallas.
inline constexpr const char* kQuery1Text =
    "SELECT e.name, e.job.name, e.dept.name "
    "FROM Employee e IN Employees "
    "WHERE e.dept.plant.location == \"Dallas\";";

/// Query 2 (paper Figure 8): cities whose mayor is called Joe.
inline constexpr const char* kQuery2Text =
    "SELECT c FROM City c IN Cities WHERE c.mayor.name == \"Joe\";";

/// Query 3 (paper Figure 10): Query 2 plus the mayor's age in the result —
/// which forces the mayor component into memory.
inline constexpr const char* kQuery3Text =
    "SELECT c.mayor.age, c.name "
    "FROM City c IN Cities WHERE c.mayor.name == \"Joe\";";

/// Query 4 (paper Figure 12): tasks with a completion time of 100 hours and
/// a team member called Fred.
inline constexpr const char* kQuery4Text =
    "SELECT t FROM Task t IN Tasks, Employee e IN t.team_members "
    "WHERE e.name == \"Fred\" && t.time == 100;";

/// Parses and simplifies paper query `n` (1-4). `ctx` must be fresh and
/// reference `db.catalog`.
Result<LogicalExprPtr> BuildPaperQuery(int n, const PaperDb& db,
                                       QueryContext* ctx);

}  // namespace oodb

#endif  // OODB_WORKLOADS_PAPER_QUERIES_H_
