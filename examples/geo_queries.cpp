// Geographic-domain workload: cities, capitals, countries, mayors,
// presidents — the paper's path-expression examples (Figure 2, Queries 2-3)
// plus set operators over collections.
#include <cstdio>

#include "src/oodb.h"

using namespace oodb;

namespace {

void Show(const PaperDb& db, ObjectStore* store, const char* title,
          const char* text) {
  std::printf("\n==== %s ====\n%s\n", title, text);
  QueryContext ctx;
  ctx.catalog = &db.catalog;
  auto logical = ParseAndSimplify(text, &ctx);
  if (!logical.ok()) {
    std::printf("  error: %s\n", logical.status().ToString().c_str());
    return;
  }
  std::printf("simplified:\n%s", PrintLogicalTree(**logical, ctx).c_str());
  Optimizer optimizer(&db.catalog);
  auto optimized = optimizer.Optimize(**logical, &ctx);
  if (!optimized.ok()) {
    std::printf("  error: %s\n", optimized.status().ToString().c_str());
    return;
  }
  std::printf("plan (cost %.3f s):\n%s", optimized->cost.total(),
              PrintPlan(*optimized->plan, ctx).c_str());
  auto stats = ExecutePlan(*optimized->plan, store, &ctx);
  if (stats.ok()) {
    std::printf("-> %lld rows\n", static_cast<long long>(stats->rows));
  }
}

}  // namespace

int main() {
  PaperDb db = MakePaperCatalog(/*scale=*/0.05);
  ObjectStore store(&db.catalog);
  auto data = GeneratePaperData(db, &store);
  if (!data.ok()) {
    std::fprintf(stderr, "datagen: %s\n", data.status().ToString().c_str());
    return 1;
  }

  Show(db, &store, "Cities with mayor Joe (paper Query 2: path index)",
       "SELECT c.name FROM City c IN Cities WHERE c.mayor.name == \"Joe\";");

  Show(db, &store,
       "Mayor ages too (paper Query 3: present-in-memory enforcer)",
       "SELECT c.mayor.age, c.name FROM City c IN Cities "
       "WHERE c.mayor.name == \"Joe\";");

  Show(db, &store,
       "Cities whose mayor is also the country's president (Figure 2)",
       "SELECT c.name FROM City c IN Cities "
       "WHERE c.mayor == c.country.president;");

  Show(db, &store, "Capitals of populous countries via subtype range",
       "SELECT k.name, k.country.name FROM City k IN Capitals "
       "WHERE k.population >= 1000000;");

  // Set operators need the algebra API: intersect the big cities with the
  // Joe-run cities.
  std::printf("\n==== Intersection: big cities that Joe runs (algebra API) "
              "====\n");
  {
    QueryContext ctx;
    ctx.catalog = &db.catalog;
    BindingId c = ctx.bindings.AddGet("c", db.city);
    BindingId m = ctx.bindings.AddMat("c.mayor", db.person, c, db.city_mayor);
    auto cities = LogicalExpr::Make(
        LogicalOp::Get(CollectionId::Set("Cities", db.city), c));
    auto big = LogicalExpr::Make(
        LogicalOp::Select(
            ScalarExpr::AttrCmpInt(c, db.city_population, CmpOp::kGe, 500000)),
        {cities});
    auto joes = LogicalExpr::Make(
        LogicalOp::Select(ScalarExpr::AttrEqStr(m, db.person_name, "Joe")),
        {LogicalExpr::Make(LogicalOp::Mat(c, db.city_mayor, m), {cities})});
    // Align scopes: project both sides to the city binding via Project-less
    // scope — the set operator requires identical scopes, so intersect the
    // unmat'ed side with a Mat added on the other branch.
    auto joes_city_scope = LogicalExpr::Make(
        LogicalOp::Mat(c, db.city_mayor, m), {big});
    auto tree = LogicalExpr::Make(LogicalOp::SetOp(LogicalOpKind::kIntersect),
                                  {joes_city_scope, joes});
    Optimizer optimizer(&db.catalog);
    auto optimized = optimizer.Optimize(*tree, &ctx);
    if (!optimized.ok()) {
      std::printf("  error: %s\n", optimized.status().ToString().c_str());
      return 1;
    }
    std::printf("plan (cost %.3f s):\n%s", optimized->cost.total(),
                PrintPlan(*optimized->plan, ctx).c_str());
    auto stats = ExecutePlan(*optimized->plan, &store, &ctx);
    if (stats.ok()) {
      std::printf("-> %lld rows\n", static_cast<long long>(stats->rows));
    } else {
      std::printf("  execute error: %s\n",
                  stats.status().ToString().c_str());
    }
  }
  return 0;
}
